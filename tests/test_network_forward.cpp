// Whole-network forward passes: numerical equivalence across every
// convolution algorithm (the core cross-validation of the reproduction),
// determinism, and bookkeeping.

#include <gtest/gtest.h>

#include <vector>

#include "core/codesign.hpp"
#include "core/conv_engine.hpp"
#include "dnn/models.hpp"
#include "test_util.hpp"

namespace vlacnn::core {
namespace {

using test::allclose;

std::vector<float> forward_with(dnn::Network& net, const EnginePolicy& policy,
                                unsigned vlen = 512) {
  vla::VectorEngine eng(vlen);
  dnn::ExecContext ctx(eng);
  ConvolutionEngine engine(policy);
  engine.install(ctx);
  dnn::Tensor input(net.in_c(), net.in_h(), net.in_w());
  Rng rng(7);
  input.randomize(rng, 0.0f, 1.0f);
  const dnn::Tensor& out = net.forward(ctx, input);
  return std::vector<float>(out.data(), out.data() + out.size());
}

TEST(NetworkForward, AllGemmVariantsAgreeOnYoloPrefix) {
  auto net = dnn::build_yolov3(96, 12);
  const auto naive = forward_with(*net, EnginePolicy::naive());
  const auto opt3 = forward_with(*net, EnginePolicy::opt3loop());
  gemm::Opt6Config o6;
  o6.blocks = {16, 128, 64};
  const auto opt6 = forward_with(*net, EnginePolicy::opt6loop(o6));
  ASSERT_EQ(naive.size(), opt3.size());
  EXPECT_TRUE(allclose(naive.data(), opt3.data(), naive.size(), 2e-3f, 2e-3f));
  EXPECT_TRUE(allclose(naive.data(), opt6.data(), naive.size(), 2e-3f, 2e-3f));
}

TEST(NetworkForward, WinogradPolicyMatchesGemmOnYoloPrefix) {
  // The prefix contains 3x3/s1, 3x3/s2 and 1x1 convolutions plus a
  // shortcut, so this exercises selection + fallback + both Winograd paths.
  auto net = dnn::build_yolov3(96, 12);
  const auto gemm_out = forward_with(*net, EnginePolicy::opt3loop());
  EnginePolicy wino = EnginePolicy::winograd(gemm::GemmVariant::Opt3Loop);
  wino.winograd_stride2 = true;
  const auto wino_out = forward_with(*net, wino, 2048);
  EXPECT_TRUE(
      allclose(gemm_out.data(), wino_out.data(), gemm_out.size(), 5e-3f, 5e-3f));
}

TEST(NetworkForward, WinogradMatchesGemmOnVggPrefix) {
  auto net = dnn::build_vgg16(32, 4);
  const auto gemm_out = forward_with(*net, EnginePolicy::opt3loop());
  const auto wino_out = forward_with(*net, EnginePolicy::winograd(), 512);
  EXPECT_TRUE(
      allclose(gemm_out.data(), wino_out.data(), gemm_out.size(), 5e-3f, 5e-3f));
}

TEST(NetworkForward, VectorLengthDoesNotChangeNumerics) {
  auto net = dnn::build_yolov3_tiny(96, 8);
  const auto v512 = forward_with(*net, EnginePolicy::opt3loop(), 512);
  const auto v16384 = forward_with(*net, EnginePolicy::opt3loop(), 16384);
  EXPECT_TRUE(allclose(v512.data(), v16384.data(), v512.size(), 1e-4f, 1e-4f));
}

TEST(NetworkForward, SimulatedRunMatchesNativeNumerics) {
  auto net = dnn::build_yolov3(96, 6);
  const auto native = forward_with(*net, EnginePolicy::opt3loop());
  // Simulated run: same kernels through the instrumented engine.
  sim::SimContext sctx(sim::rvv_gem5());
  vla::VectorEngine eng(sctx);
  dnn::ExecContext ctx(eng);
  ConvolutionEngine engine(EnginePolicy::opt3loop());
  engine.install(ctx);
  dnn::Tensor input(net->in_c(), net->in_h(), net->in_w());
  Rng rng(7);
  input.randomize(rng, 0.0f, 1.0f);
  const dnn::Tensor& out = net->forward(ctx, input);
  EXPECT_TRUE(allclose(native.data(), out.data(), native.size(), 0.0f, 0.0f));
}

TEST(NetworkForward, FullTinyYoloRunsEndToEnd) {
  auto net = dnn::build_yolov3_tiny(96);
  const auto out = forward_with(*net, EnginePolicy::opt3loop());
  EXPECT_FALSE(out.empty());
  for (float v : out) ASSERT_TRUE(std::isfinite(v));
}

TEST(NetworkForward, FullVggRunsEndToEnd) {
  auto net = dnn::build_vgg16(32);
  const auto out = forward_with(*net, EnginePolicy::opt3loop());
  ASSERT_EQ(out.size(), 1000u);  // class distribution
  float sum = 0.0f;
  for (float v : out) sum += v;
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

TEST(NetworkForward, RecordsPerLayerStats) {
  auto net = dnn::build_yolov3(96, 6);
  sim::SimContext sctx(sim::rvv_gem5());
  vla::VectorEngine eng(sctx);
  dnn::ExecContext ctx(eng);
  ConvolutionEngine engine(EnginePolicy::opt3loop());
  engine.install(ctx);
  dnn::Tensor input(3, 96, 96);
  Rng rng(7);
  input.randomize(rng);
  net->forward(ctx, input);
  ASSERT_EQ(ctx.records.size(), 6u);
  for (const auto& rec : ctx.records) {
    EXPECT_FALSE(rec.name.empty());
    EXPECT_GT(rec.cycles, 0u);
  }
  // GEMM dominance (paper §II-B: conv layers dominate execution).
  std::uint64_t conv = 0, total = 0;
  for (const auto& rec : ctx.records) {
    total += rec.cycles;
    if (rec.name.rfind("conv", 0) == 0) conv += rec.cycles;
  }
  EXPECT_GT(static_cast<double>(conv) / static_cast<double>(total), 0.8);
}

}  // namespace
}  // namespace vlacnn::core

// Weight residency: the pack-once PackedWeightCache and the batch-fused
// execution path it enables. Pins the PR's core contracts — resident packed
// A-panels are bytewise the run-time pack layout, resident and batch-fused
// execution are bit-identical to the per-item packing path across shapes /
// batch sizes / thread counts (residuals and non-fusable activations
// included), the cache's budget + LRU accounting behaves, concurrent
// readers over one shared cache are race-free, and the hot path's
// bytes-moved drop (the eliminated A-pack stage) does not regress on a VGG
// block-5 shape.

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "core/conv_engine.hpp"
#include "dnn/models.hpp"
#include "gemm/packed_weight_cache.hpp"
#include "runtime/batch_scheduler.hpp"
#include "sim/sim_context.hpp"
#include "test_util.hpp"

namespace vlacnn::gemm {
namespace {

std::uint32_t ulp_diff(float a, float b) {
  std::int32_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  if (ia < 0) ia = std::numeric_limits<std::int32_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<std::int32_t>::min() - ib;
  const std::int64_t d = static_cast<std::int64_t>(ia) - ib;
  return static_cast<std::uint32_t>(d < 0 ? -d : d);
}

std::uint32_t max_ulp(const std::vector<float>& a,
                      const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  std::uint32_t m = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, ulp_diff(a[i], b[i]));
  return m;
}

TEST(PackedWeights, ImageMatchesRuntimePackLayout) {
  const int m = 5, k = 11, block_k = 4;
  const std::vector<float> a = test::random_vec(
      static_cast<std::size_t>(m) * k, 42);
  const PackedWeights img(a.data(), m, k, block_k);
  ASSERT_EQ(img.bytes(), static_cast<std::size_t>(m) * k * sizeof(float));
  for (int k1 = 0; k1 < k; k1 += block_k) {
    const int kc = std::min(block_k, k - k1);
    for (int i1 = 0; i1 < m; ++i1) {  // every row is a degenerate mc=1 panel
      const float* panel = img.panel(i1, k1, kc);
      for (int c = 0; c < kc; ++c)
        EXPECT_EQ(panel[c], a[static_cast<std::size_t>(i1) * k + k1 + c])
            << "i1=" << i1 << " k1=" << k1 << " c=" << c;
    }
  }
}

TEST(PackedWeights, CacheHitMissEvictionAccounting) {
  const int m = 8, k = 16, block_k = 8;  // 512-byte images
  const std::size_t img_bytes = static_cast<std::size_t>(m) * k * sizeof(float);
  const auto w1 = test::random_vec(static_cast<std::size_t>(m) * k, 1);
  const auto w2 = test::random_vec(static_cast<std::size_t>(m) * k, 2);
  const auto w3 = test::random_vec(static_cast<std::size_t>(m) * k, 3);

  PackedWeightCache cache(2 * img_bytes);
  EXPECT_EQ(cache.find(w1.data(), m, k, block_k), nullptr);  // miss
  ASSERT_NE(cache.prepare(w1.data(), m, k, block_k), nullptr);
  ASSERT_NE(cache.prepare(w2.data(), m, k, block_k), nullptr);
  auto s = cache.stats();
  EXPECT_EQ(s.packs, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.resident_bytes, 2 * img_bytes);

  // Re-preparing is a refresh, not a re-pack.
  ASSERT_NE(cache.prepare(w1.data(), m, k, block_k), nullptr);
  EXPECT_EQ(cache.stats().packs, 2u);

  // Budget full: a third layer is deferred to the run-time pack path —
  // never admitted by evicting a resident image (prepare() runs before
  // every batch; evict-on-insert would repack the rotation per batch).
  EXPECT_EQ(cache.prepare(w3.data(), m, k, block_k), nullptr);
  s = cache.stats();
  EXPECT_EQ(s.deferred, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.packs, 2u);  // the skip is O(1): nothing was packed
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(cache.find(w3.data(), m, k, block_k), nullptr);

  // An image larger than the whole budget is rejected without packing.
  const int big_m = 64;
  const auto wbig = test::random_vec(static_cast<std::size_t>(big_m) * k, 4);
  EXPECT_EQ(cache.prepare(wbig.data(), big_m, k, block_k), nullptr);
  s = cache.stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.packs, 2u);
  EXPECT_EQ(s.entries, 2u);

  // Shrinking the budget evicts in LRU order: touch w1 then w2, so w1 is
  // the least recently used when the budget halves.
  auto held = cache.find(w1.data(), m, k, block_k);
  ASSERT_NE(held, nullptr);
  ASSERT_NE(cache.find(w2.data(), m, k, block_k), nullptr);  // w1 is LRU
  cache.set_budget(img_bytes);
  s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.resident_bytes, img_bytes);
  EXPECT_EQ(cache.find(w1.data(), m, k, block_k), nullptr);  // evicted
  ASSERT_NE(cache.find(w2.data(), m, k, block_k), nullptr);  // survived
  // A shared_ptr taken before the eviction keeps the image alive.
  EXPECT_EQ(held->panel(0, 0, block_k)[0], w1[0]);

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
}

TEST(PackedWeights, ConcurrentReadersShareOneCache) {
  // The serving pattern: prepare() once, then many threads find() + read
  // the image (and occasionally re-prepare, which must stay a refresh).
  const int m = 32, k = 64, block_k = 16;
  const auto w = test::random_vec(static_cast<std::size_t>(m) * k, 9);
  PackedWeightCache cache;
  ASSERT_NE(cache.prepare(w.data(), m, k, block_k), nullptr);

  std::vector<std::thread> readers;
  std::vector<double> sums(4, 0.0);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int rep = 0; rep < 50; ++rep) {
        auto img = cache.find(w.data(), m, k, block_k);
        ASSERT_NE(img, nullptr);
        double s = 0.0;
        const float* data = img->data();
        for (int i = 0; i < m * k; ++i) s += data[i];
        sums[static_cast<std::size_t>(t)] = s;
        cache.prepare(w.data(), m, k, block_k);
      }
    });
  }
  for (auto& th : readers) th.join();
  for (int t = 1; t < 4; ++t) EXPECT_EQ(sums[0], sums[static_cast<std::size_t>(t)]);
  EXPECT_EQ(cache.stats().packs, 1u);
}

/// Batched forward of `net` through a scheduler built on `policy`.
std::vector<float> run_scheduled(dnn::Network& net,
                                 const core::EnginePolicy& policy, int batch,
                                 int threads) {
  core::ConvolutionEngine engine(policy);
  runtime::SchedulerConfig cfg;
  cfg.threads = threads;
  runtime::BatchScheduler sched(engine, cfg);
  dnn::Tensor input(batch, net.in_c(), net.in_h(), net.in_w());
  input.randomize_batch(4321, 0.0f, 1.0f);
  const dnn::Tensor& out = sched.run(net, input);
  return {out.data(), out.data() + out.size()};
}

TEST(PackedWeights, ResidentBatchFusedBitIdenticalAcrossModels) {
  // The headline contract: turning weight residency on — pack-once A
  // panels plus batch-fused dispatch of every GEMM-routed layer and the FC
  // tail — changes traffic, never bits. Covers residual folding (yolo),
  // the FC tail + non-divisible spatial sizes (vgg prefix incl one
  // connected layer), fused and unfused GEMM, batch 1/4, 1/4 threads.
  struct Case {
    const char* tag;
    std::unique_ptr<dnn::Network> (*build)();
  };
  const Case cases[] = {
      // Input 32 keeps the conv-1024 layer (the most weight-bound shape,
      // M=1024 vs N=1) while staying affordable under TSan.
      {"tiny", [] { return dnn::build_yolov3_tiny(32, 14); }},
      {"yolo-res",
       [] {
         auto net = dnn::build_yolov3(32, 8);
         net->fuse_residuals();
         return net;
       }},
      // VGG-tail-shaped net: weight-bound 3x3 + 1x1 convs feeding an FC
      // layer — all three batch-fused forms, without the activation-bound
      // early blocks a full VGG prefix would spend TSan time on.
      {"vgg-tail",
       [] {
         auto net = std::make_unique<dnn::Network>(128, 8, 8, 5);
         net->add_conv(128, 3, 1, 1, dnn::Activation::Relu, false);
         net->add_conv(128, 1, 1, 0, dnn::Activation::Leaky, true);
         net->add_maxpool(2, 2);
         net->add_connected(512, dnn::Activation::Relu);
         net->add_softmax();
         return net;
       }},
  };
  for (const auto& c : cases) {
    for (core::EnginePolicy policy :
         {core::EnginePolicy::fused(), core::EnginePolicy::opt6loop()}) {
      auto net = c.build();
      core::EnginePolicy resident = policy;
      resident.weight_resident = true;
      for (int threads : {1, 4}) {
        const int batch = threads == 1 ? 1 : 4;
        const auto base = run_scheduled(*net, policy, batch, threads);
        const auto res = run_scheduled(*net, resident, batch, threads);
        EXPECT_EQ(max_ulp(base, res), 0u)
            << c.tag << " threads=" << threads << " batch=" << batch;
      }
    }
  }
}

TEST(PackedWeights, ResidentPathCutsBytesMovedOnVggBlock5Shape) {
  // A half-scale VGG block-5 layer (weight-bound: M >= N): with a resident
  // image the hot path must stop re-reading and re-writing the A panels —
  // the functional byte counters drop by ~2·M·K·4 per item (the pack
  // stage's read + write), and the outputs stay bit-identical.
  dnn::ConvDesc d;
  d.in_c = 256;
  d.in_h = d.in_w = 8;
  d.out_c = 256;
  d.ksize = 3;
  d.stride = 1;
  d.pad = 1;
  d.batch_norm = false;
  d.act = dnn::Activation::Relu;
  ASSERT_TRUE(core::conv_weight_bound(d));

  auto run = [&](bool resident, std::uint64_t* bytes) {
    core::EnginePolicy policy = core::EnginePolicy::fused();
    policy.weight_resident = resident;
    dnn::ConvLayer layer(d, 77);
    vla::VectorEngine eng(512);
    dnn::ExecContext ctx(eng);
    core::ConvolutionEngine engine(policy);
    engine.install(ctx);
    engine.prepare(d, layer.weights());
    dnn::Tensor in(d.in_c, d.in_h, d.in_w);
    Rng rng(7);
    in.randomize(rng);
    layer.forward(ctx, {&in});
    *bytes = eng.mem_bytes_moved();
    return std::vector<float>(layer.output().data(),
                              layer.output().data() + layer.output().size());
  };

  std::uint64_t res_bytes = 0, base_bytes = 0;
  const auto res = run(true, &res_bytes);
  const auto base = run(false, &base_bytes);
  EXPECT_EQ(max_ulp(res, base), 0u);
  const std::uint64_t pack_bytes =
      2ull * d.gemm_m() * d.gemm_k() * sizeof(float);
  EXPECT_LT(res_bytes, base_bytes);
  // Regression floor: at least 3/4 of the pack stage must actually be gone.
  EXPECT_GE(base_bytes - res_bytes, pack_bytes * 3 / 4)
      << "base=" << base_bytes << " resident=" << res_bytes;
}

TEST(PackedWeights, DramWatchAttributesWeightFills) {
  // Sanity of the bench metric: watching the weight + packed-image ranges
  // counts a subset of total DRAM fills, and that subset is at least the
  // weight matrix's own line count on a cold cache.
  dnn::ConvDesc d;
  d.in_c = 64;
  d.in_h = d.in_w = 8;
  d.out_c = 64;
  d.ksize = 3;
  d.stride = 1;
  d.pad = 1;
  d.batch_norm = false;
  d.act = dnn::Activation::Relu;

  core::EnginePolicy policy = core::EnginePolicy::fused();
  policy.weight_resident = true;
  dnn::ConvLayer layer(d, 5);
  sim::SimContext sctx(sim::sve_gem5());
  vla::VectorEngine eng(sctx);
  dnn::ExecContext ctx(eng);
  core::ConvolutionEngine engine(policy);
  engine.install(ctx);
  engine.prepare(d, layer.weights());
  const auto img = engine.packed_weights().find(
      layer.weights(), d.gemm_m(), d.gemm_k(),
      engine.plan().opt6.blocks.block_k);
  ASSERT_NE(img, nullptr);
  sctx.memory().add_dram_watch(
      sim::AddressMap::instance().translate(layer.weights()),
      static_cast<std::uint64_t>(d.weight_count()) * sizeof(float));
  sctx.memory().add_dram_watch(
      sim::AddressMap::instance().translate(img->data()), img->bytes());

  dnn::Tensor in(d.in_c, d.in_h, d.in_w);
  Rng rng(7);
  in.randomize(rng);
  layer.forward(ctx, {&in});

  const std::uint64_t watched = sctx.memory().watched_dram_line_fills();
  const std::uint64_t total = sctx.memory().dram_line_fills();
  const std::uint64_t weight_lines =
      static_cast<std::uint64_t>(d.weight_count()) * sizeof(float) /
      sim::sve_gem5().l2.line_bytes;
  EXPECT_GT(watched, 0u);
  EXPECT_LE(watched, total);
  // The resident image is streamed once from DRAM on a cold cache.
  EXPECT_GE(watched, weight_lines / 2);
}

}  // namespace
}  // namespace vlacnn::gemm

// Stream prefetcher: training, issue depth, stride handling.

#include <gtest/gtest.h>

#include "sim/cache.hpp"
#include "sim/prefetcher.hpp"

namespace vlacnn::sim {
namespace {

TEST(Prefetcher, TrainsOnUnitStrideStream) {
  CacheModel cache(CacheConfig{64 * 1024, 8, 64, 4});
  StreamPrefetcher pf(64, /*depth=*/4);
  // Walk a unit-stride stream; after 3 accesses the stride is confirmed.
  for (int i = 0; i < 8; ++i) pf.observe(static_cast<std::uint64_t>(i) * 64, cache);
  EXPECT_GE(pf.stats().trained_streams, 1u);
  EXPECT_GT(pf.stats().issued, 0u);
  // Lines ahead of the stream are now resident.
  EXPECT_TRUE(cache.contains(8 * 64));
  EXPECT_TRUE(cache.contains(9 * 64));
}

TEST(Prefetcher, StreamTurnsMissesIntoHits) {
  CacheModel cache(CacheConfig{64 * 1024, 8, 64, 4});
  StreamPrefetcher pf(64, 4);
  std::uint64_t misses = 0;
  for (int i = 0; i < 32; ++i) {
    const std::uint64_t addr = static_cast<std::uint64_t>(i) * 64;
    pf.observe(addr, cache);
    if (cache.access(addr, false) == AccessResult::Miss) ++misses;
  }
  // Only the training prefix misses.
  EXPECT_LE(misses, 4u);
}

TEST(Prefetcher, LearnsNonUnitStrides) {
  CacheModel cache(CacheConfig{64 * 1024, 8, 64, 4});
  StreamPrefetcher pf(64, 2);
  for (int i = 0; i < 6; ++i)
    pf.observe(static_cast<std::uint64_t>(i) * 192, cache);  // stride 3 lines
  EXPECT_TRUE(cache.contains(6 * 192));
}

TEST(Prefetcher, RandomAccessesDoNotTrain) {
  CacheModel cache(CacheConfig{64 * 1024, 8, 64, 4});
  StreamPrefetcher pf(64, 4);
  const std::uint64_t addrs[] = {0x0, 0x10000, 0x333340, 0x2000, 0x98765 * 64};
  for (auto a : addrs) pf.observe(a, cache);
  EXPECT_EQ(pf.stats().trained_streams, 0u);
}

TEST(Prefetcher, ResetClearsTraining) {
  CacheModel cache(CacheConfig{64 * 1024, 8, 64, 4});
  StreamPrefetcher pf(64, 4);
  for (int i = 0; i < 8; ++i) pf.observe(static_cast<std::uint64_t>(i) * 64, cache);
  pf.reset();
  EXPECT_EQ(pf.stats().issued, 0u);
}

}  // namespace
}  // namespace vlacnn::sim

// Reduced-precision weight residency: bf16/int8 packed images and the
// quantized Gemm6 backends consuming them. Pins the PR's contracts — the
// bf16 round trip is exact for representable values (the widen is a bit
// shift), int8 per-channel scales recover every weight to within half a
// quantization step across adversarial dynamic ranges, format-tagged cache
// entries coexist under one budget with per-format accounting, quantized
// conv outputs stay inside the pinned accuracy gates (and batch-fused ==
// per-item bitwise), execution silently falls back to fp32 when the
// quantized image is not resident, concurrent readers of format-tagged
// entries are race-free, and the selector admits quantized candidates only
// under an explicit accuracy budget.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "core/conv_engine.hpp"
#include "core/selector.hpp"
#include "dnn/models.hpp"
#include "gemm/packed_weight_cache.hpp"
#include "sim/machine_config.hpp"
#include "test_util.hpp"

namespace vlacnn::gemm {
namespace {

std::uint32_t ulp_diff(float a, float b) {
  std::int32_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  if (ia < 0) ia = std::numeric_limits<std::int32_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<std::int32_t>::min() - ib;
  const std::int64_t d = static_cast<std::int64_t>(ia) - ib;
  return static_cast<std::uint32_t>(d < 0 ? -d : d);
}

/// Element (row, col) of a packed image, without assuming the element type:
/// the BLIS panel layout puts column `col` of row `row` at offset
/// (col - k1) inside panel(row, k1, kc) of its k-block.
const void* image_elem(const PackedWeights& img, int row, int col) {
  const int k1 = (col / img.block_k()) * img.block_k();
  const int kc = std::min(img.block_k(), img.k() - k1);
  return static_cast<const std::uint8_t*>(img.panel_raw(row, k1, kc)) +
         static_cast<std::size_t>(col - k1) * img.elem_bytes();
}

TEST(QuantizedWeights, Bf16RoundTripExactForRepresentable) {
  // Round-to-nearest-even unit pins: ties go to the even mantissa.
  EXPECT_EQ(bf16_from_f32(1.0f), 0x3F80u);
  EXPECT_EQ(bf16_from_f32(-2.0f), 0xC000u);
  float tie_even, tie_odd;
  std::uint32_t bits = 0x3F808000u;  // halfway between 0x3F80 and 0x3F81
  std::memcpy(&tie_even, &bits, sizeof(bits));
  bits = 0x3F818000u;                // halfway between 0x3F81 and 0x3F82
  std::memcpy(&tie_odd, &bits, sizeof(bits));
  EXPECT_EQ(bf16_from_f32(tie_even), 0x3F80u);  // down to even
  EXPECT_EQ(bf16_from_f32(tie_odd), 0x3F82u);   // up to even

  // The conversion is idempotent (every bf16-representable value survives
  // another round trip bit-exactly), and a Bf16 image of pre-rounded
  // weights reproduces them exactly through the packed panels.
  const int m = 7, k = 13, block_k = 5;
  std::vector<float> w = test::random_vec(
      static_cast<std::size_t>(m) * k, 11, -8.0f, 8.0f);
  for (auto& x : w) x = f32_from_bf16(bf16_from_f32(x));
  for (float x : w) EXPECT_EQ(f32_from_bf16(bf16_from_f32(x)), x);

  const PackedWeights img(w.data(), m, k, block_k, PackFormat::Bf16);
  EXPECT_EQ(img.format(), PackFormat::Bf16);
  EXPECT_EQ(img.data_bytes(), static_cast<std::size_t>(m) * k * 2);
  EXPECT_EQ(img.scales(), nullptr);
  for (int i = 0; i < m; ++i) {
    for (int c = 0; c < k; ++c) {
      std::uint16_t h;
      std::memcpy(&h, image_elem(img, i, c), sizeof(h));
      EXPECT_EQ(f32_from_bf16(h), w[static_cast<std::size_t>(i) * k + c])
          << "row=" << i << " col=" << c;
    }
  }
}

TEST(QuantizedWeights, Int8ScaleRecoveryAdversarialRanges) {
  // One row per adversarial regime; every dequantized weight must land
  // within half a quantization step (s/2) of its source, whatever the
  // channel's dynamic range.
  const int k = 16, block_k = 6;
  std::vector<std::vector<float>> rows = {
      test::random_vec(k, 21, -1e-30f, 1e-30f),  // denormal-adjacent scale
      test::random_vec(k, 22, -1e30f, 1e30f),    // huge magnitudes
      std::vector<float>(k, 0.0f),               // all-zero channel
      std::vector<float>(k, 0.5f),               // constant channel
      test::random_vec(k, 23, -1e-4f, 1e-4f),    // uniform tiny
  };
  // Wide intra-channel dynamic range: tiny values must quantize to 0
  // without breaking the bound.
  std::vector<float> wide = test::random_vec(k, 24, -1e-4f, 1e-4f);
  wide[3] = 1000.0f;
  wide[9] = -731.0f;
  rows.push_back(wide);

  const int m = static_cast<int>(rows.size());
  std::vector<float> w(static_cast<std::size_t>(m) * k);
  for (int i = 0; i < m; ++i)
    std::memcpy(w.data() + static_cast<std::size_t>(i) * k, rows[i].data(),
                sizeof(float) * k);

  // Scale contract: amax/127, except 1.0 for an all-zero channel.
  for (int i = 0; i < m; ++i) {
    float amax = 0.0f;
    for (float x : rows[static_cast<std::size_t>(i)])
      amax = std::max(amax, std::fabs(x));
    const float s = int8_channel_scale(rows[static_cast<std::size_t>(i)].data(), k);
    if (amax == 0.0f)
      EXPECT_EQ(s, 1.0f) << "row=" << i;
    else
      EXPECT_FLOAT_EQ(s, amax / 127.0f) << "row=" << i;
  }

  const PackedWeights img(w.data(), m, k, block_k,
                          PackFormat::Int8PerChannel);
  ASSERT_NE(img.scales(), nullptr);
  EXPECT_EQ(img.scales_bytes(), static_cast<std::size_t>(m) * sizeof(float));
  EXPECT_EQ(img.data_bytes(), static_cast<std::size_t>(m) * k);
  for (int i = 0; i < m; ++i) {
    const float s = img.scales()[i];
    for (int c = 0; c < k; ++c) {
      const std::int8_t q =
          *static_cast<const std::int8_t*>(image_elem(img, i, c));
      EXPECT_GE(q, -127);  // symmetric: -128 never produced
      const float src = w[static_cast<std::size_t>(i) * k + c];
      // s/2 rounding bound, padded for the fp rounding of q*s itself.
      EXPECT_LE(std::fabs(src - static_cast<float>(q) * s),
                0.5f * s * (1.0f + 1e-4f))
          << "row=" << i << " col=" << c << " q=" << static_cast<int>(q);
    }
  }
}

TEST(QuantizedWeights, FormatTaggedEntriesCoexistWithPerFormatAccounting) {
  const int m = 8, k = 16, block_k = 8;
  const auto w = test::random_vec(static_cast<std::size_t>(m) * k, 31);
  const std::size_t f32_bytes = static_cast<std::size_t>(m) * k * 4;
  const std::size_t bf16_bytes = static_cast<std::size_t>(m) * k * 2;
  const std::size_t int8_bytes =
      static_cast<std::size_t>(m) * k + static_cast<std::size_t>(m) * 4;

  PackedWeightCache cache;
  ASSERT_NE(cache.prepare(w.data(), m, k, block_k), nullptr);
  ASSERT_NE(cache.prepare(w.data(), m, k, block_k, PackFormat::Bf16), nullptr);
  ASSERT_NE(cache.prepare(w.data(), m, k, block_k, PackFormat::Int8PerChannel),
            nullptr);

  // All three images of the SAME weights are resident side by side: the
  // format participates in the key.
  EXPECT_NE(cache.find(w.data(), m, k, block_k), nullptr);
  EXPECT_NE(cache.find(w.data(), m, k, block_k, PackFormat::Bf16), nullptr);
  EXPECT_NE(cache.find(w.data(), m, k, block_k, PackFormat::Int8PerChannel),
            nullptr);

  auto s = cache.stats();
  EXPECT_EQ(s.entries, 3u);
  EXPECT_EQ(s.packs, 3u);
  using F = PackFormat;
  EXPECT_EQ(s.resident_bytes_by_format[static_cast<int>(F::F32)], f32_bytes);
  EXPECT_EQ(s.resident_bytes_by_format[static_cast<int>(F::Bf16)], bf16_bytes);
  EXPECT_EQ(s.resident_bytes_by_format[static_cast<int>(F::Int8PerChannel)],
            int8_bytes);
  EXPECT_EQ(s.resident_bytes, f32_bytes + bf16_bytes + int8_bytes);

  cache.clear();
  s = cache.stats();
  EXPECT_EQ(s.resident_bytes, 0u);
  for (std::size_t f = 0; f < kNumPackFormats; ++f)
    EXPECT_EQ(s.resident_bytes_by_format[f], 0u);
}

/// Weight-bound VGG-block-5-flavored shape shared by the execution tests.
dnn::ConvDesc quant_conv_desc() {
  dnn::ConvDesc d;
  d.in_c = 64;
  d.in_h = d.in_w = 8;
  d.out_c = 128;
  d.ksize = 3;
  d.stride = 1;
  d.pad = 1;
  d.batch_norm = true;
  d.act = dnn::Activation::Leaky;
  return d;
}

/// Forward of one conv layer under `plan` (functional vlen-512 engine),
/// batch-fused over `batch` when `batched`, per item otherwise.
std::vector<float> run_quant(const core::BackendPlan& plan, int batch,
                             bool batched) {
  const dnn::ConvDesc d = quant_conv_desc();
  vla::VectorEngine eng(512);
  dnn::ExecContext ctx(eng);
  dnn::ConvLayer layer(d, 99);
  core::ConvolutionEngine engine(plan);
  engine.install(ctx);
  engine.prepare(d, layer.weights());

  dnn::Tensor input(batch, d.in_c, d.in_h, d.in_w);
  input.randomize_batch(777, -1.0f, 1.0f);
  const std::vector<const dnn::Tensor*> ins{&input};
  layer.prepare_batch(ins);
  bool fused = false;
  if (batched) fused = layer.forward_batch(ctx, ins);
  if (!fused)
    for (int b = 0; b < batch; ++b) layer.forward_item(ctx, ins, b);
  const dnn::Tensor& out = layer.output();
  return {out.data(), out.data() + out.size()};
}

core::BackendPlan resident_fused_plan(PackFormat fmt) {
  core::EnginePolicy policy = core::EnginePolicy::fused();
  policy.weight_resident = true;
  return core::BackendPlan::uniform(policy).with_precision(fmt);
}

TEST(QuantizedWeights, QuantizedConvMatchesFp32WithinPinnedGates) {
  const dnn::ConvDesc d = quant_conv_desc();
  const auto ref = run_quant(resident_fused_plan(PackFormat::F32), 1, false);
  float max_abs_ref = 0.0f;
  for (float x : ref) max_abs_ref = std::max(max_abs_ref, std::fabs(x));
  ASSERT_GT(max_abs_ref, 0.0f);
  // ULP distance only means anything at working magnitude: a near-zero
  // (cancellation-dominated) output sits astronomically many ULPs from an
  // equally tiny reference. Same floor the bench/selector gates use.
  const float ulp_floor = max_abs_ref / 1024.0f;

  struct Case {
    PackFormat fmt;
    float rel_tol;
  };
  for (const Case c : {Case{PackFormat::Bf16, core::kBf16OutputRelTol},
                       Case{PackFormat::Int8PerChannel,
                            core::kInt8OutputRelTol}}) {
    const auto out = run_quant(resident_fused_plan(c.fmt), 1, false);
    ASSERT_EQ(out.size(), ref.size());
    float max_abs_err = 0.0f;
    std::uint32_t max_ulp = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      max_abs_err = std::max(max_abs_err, std::fabs(ref[i] - out[i]));
      if (std::fabs(ref[i]) >= ulp_floor)
        max_ulp = std::max(max_ulp, ulp_diff(ref[i], out[i]));
    }
    EXPECT_LE(max_abs_err, c.rel_tol * max_abs_ref) << to_string(c.fmt);
    if (c.fmt == PackFormat::Bf16)
      EXPECT_LE(max_ulp, core::kBf16OutputMaxUlp);
    // int8: the classification proxy — per-position channel argmax survives
    // wherever the reference decides by more than the quantization error
    // bound. (A near-tie inside that bound can legitimately flip; the
    // selector's strict top-1 gate simply rejects such layers rather than
    // asserting they cannot exist.)
    if (c.fmt == PackFormat::Int8PerChannel) {
      const float margin = 2.0f * c.rel_tol * max_abs_ref;
      const std::size_t hw = ref.size() / static_cast<std::size_t>(d.out_c);
      for (std::size_t j = 0; j < hw; ++j) {
        std::size_t ra = 0, qa = 0;
        for (std::size_t ch = 1; ch < static_cast<std::size_t>(d.out_c); ++ch) {
          if (ref[ch * hw + j] > ref[ra * hw + j]) ra = ch;
          if (out[ch * hw + j] > out[qa * hw + j]) qa = ch;
        }
        if (ra != qa)
          EXPECT_LE(ref[ra * hw + j] - ref[qa * hw + j], margin)
              << "top-1 flipped across a decisive margin at position " << j;
      }
    }
  }
}

TEST(QuantizedWeights, QuantizedBatchFusedBitIdenticalToPerItem) {
  // The residency bit-identity contract carries over to the quantized
  // backends: batch-fused execution of a resident quantized image produces
  // the same bits as the per-item path over the same image.
  for (PackFormat fmt : {PackFormat::Bf16, PackFormat::Int8PerChannel}) {
    const core::BackendPlan plan = resident_fused_plan(fmt);
    const auto fused = run_quant(plan, 4, true);
    const auto items = run_quant(plan, 4, false);
    ASSERT_EQ(fused.size(), items.size());
    EXPECT_EQ(std::memcmp(fused.data(), items.data(),
                          fused.size() * sizeof(float)),
              0)
        << to_string(fmt);
  }
}

TEST(QuantizedWeights, QuantizedFallsBackToF32WhenNotResident) {
  // Residency-or-nothing: with a zero cache budget the quantized image is
  // never retained, and a quantized route silently runs the fp32 packing
  // path — bit-identical to the plain fused plan. Nothing quantizes on the
  // hot path.
  core::EnginePolicy policy = core::EnginePolicy::fused();
  const auto ref = run_quant(core::BackendPlan::uniform(policy), 1, false);
  for (PackFormat fmt : {PackFormat::Bf16, PackFormat::Int8PerChannel}) {
    core::BackendPlan starved = resident_fused_plan(fmt);
    starved.packed_weight_budget = 0;
    const auto out = run_quant(starved, 1, false);
    ASSERT_EQ(out.size(), ref.size());
    EXPECT_EQ(std::memcmp(out.data(), ref.data(), ref.size() * sizeof(float)),
              0)
        << to_string(fmt);
  }
}

TEST(QuantizedWeights, ConcurrentReadersOfFormatTaggedEntries) {
  // The mixed-precision serving pattern: one cache holds all three images
  // of a layer's weights; worker threads find() and read whichever format
  // their plan routes to while prepare() refreshes run concurrently.
  const int m = 32, k = 64, block_k = 16;
  const auto w = test::random_vec(static_cast<std::size_t>(m) * k, 41);
  const PackFormat formats[] = {PackFormat::F32, PackFormat::Bf16,
                                PackFormat::Int8PerChannel};
  constexpr std::size_t kNumFormats = std::size(formats);
  PackedWeightCache cache;
  for (PackFormat f : formats)
    ASSERT_NE(cache.prepare(w.data(), m, k, block_k, f), nullptr);

  constexpr int kThreads = 4;
  std::vector<std::uint64_t> sums(kThreads * kNumFormats, 0);
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int rep = 0; rep < 50; ++rep) {
        for (std::size_t fi = 0; fi < kNumFormats; ++fi) {
          auto img = cache.find(w.data(), m, k, block_k, formats[fi]);
          ASSERT_NE(img, nullptr);
          const auto* bytes = static_cast<const std::uint8_t*>(img->raw());
          std::uint64_t s = 0;
          for (std::size_t i = 0; i < img->data_bytes(); ++i) s += bytes[i];
          sums[static_cast<std::size_t>(t) * kNumFormats + fi] = s;
          cache.prepare(w.data(), m, k, block_k, formats[fi]);
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  for (int t = 1; t < kThreads; ++t)
    for (std::size_t fi = 0; fi < kNumFormats; ++fi)
      EXPECT_EQ(sums[fi],
                sums[static_cast<std::size_t>(t) * kNumFormats + fi]);
  EXPECT_EQ(cache.stats().packs, kNumFormats);
}

TEST(QuantizedWeights, SelectorAdmitsQuantizedOnlyUnderBudget) {
  // One weight-bound conv (M=128 >= N=64): the default budget must keep
  // selection fp32-only (the historical behavior), while relaxed() lists
  // quantized candidates — and any quantized winner is weight-resident.
  auto build = [] {
    auto net = std::make_unique<dnn::Network>(64, 8, 8, 3);
    net->add_conv(128, 3, 1, 1, dnn::Activation::Leaky, true);
    return net;
  };
  {
    auto net = build();
    const core::BackendPlan plan =
        core::select_per_layer(*net, sim::sve_gem5());
    for (const auto& e : plan.entries)
      for (const auto& cand : e.candidates)
        EXPECT_FALSE(core::backend_quantized(cand.first))
            << core::to_string(cand.first);
  }
  {
    auto net = build();
    const core::BackendPlan plan = core::select_per_layer(
        *net, sim::sve_gem5(), 7, 4, core::AccuracyBudget::relaxed());
    ASSERT_FALSE(plan.entries.empty());
    bool any_quantized_candidate = false;
    for (const auto& e : plan.entries) {
      for (const auto& cand : e.candidates)
        if (core::backend_quantized(cand.first)) any_quantized_candidate = true;
      if (core::backend_quantized(e.backend)) EXPECT_TRUE(e.weight_resident);
    }
    // At least one format passes the pinned gates on this shape and must be
    // listed (bf16's gates are loose enough by construction; int8 may
    // additionally be rejected by its strict top-1 gate).
    EXPECT_TRUE(any_quantized_candidate);
  }
}

}  // namespace
}  // namespace vlacnn::gemm

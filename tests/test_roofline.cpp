// Roofline (Table IV) machinery: shapes, AI values, and sanity of the
// measured sustained-performance fractions.

#include <gtest/gtest.h>

#include "core/roofline.hpp"

namespace vlacnn::core {
namespace {

TEST(Roofline, FourteenDiscreteLayers) {
  const auto layers = table4_layers(608);
  const auto labels = table4_labels();
  EXPECT_EQ(layers.size(), 14u);
  EXPECT_EQ(labels.size(), 14u);
  EXPECT_EQ(labels.front(), "L1");
  EXPECT_EQ(labels.back(), "L75");
}

TEST(Roofline, ShapesMatchPaperTable4) {
  const auto layers = table4_layers(608);
  // L1: 32 x 369664 x 27.
  EXPECT_EQ(layers[0].gemm_m(), 32);
  EXPECT_EQ(layers[0].gemm_n(), 369664);
  EXPECT_EQ(layers[0].gemm_k(), 27);
  // L44: 1024 x 361 x 4608.
  EXPECT_EQ(layers[8].gemm_m(), 1024);
  EXPECT_EQ(layers[8].gemm_n(), 361);
  EXPECT_EQ(layers[8].gemm_k(), 4608);
}

TEST(Roofline, ArithmeticIntensitiesMatchPaper) {
  const auto layers = table4_layers(608);
  const double want_ai[] = {7.32, 26, 11, 52, 21, 101, 42,
                            76,   126, 88, 65, 85, 162, 63};
  for (std::size_t i = 0; i < layers.size(); ++i)
    EXPECT_NEAR(layers[i].arithmetic_intensity(), want_ai[i],
                want_ai[i] * 0.06 + 0.5)
        << table4_labels()[i];
}

TEST(Roofline, MeasuredEntriesAreSane) {
  // Keep it fast: strong N scaling, 6-loop GEMM on the A64FX preset.
  EnginePolicy policy = EnginePolicy::opt6loop();
  const auto entries = run_roofline(sim::a64fx(), policy, 608, 256);
  ASSERT_EQ(entries.size(), 14u);
  for (const auto& e : entries) {
    EXPECT_GT(e.gflops, 0.0) << e.label;
    EXPECT_GT(e.pct_of_peak, 5.0) << e.label;
    EXPECT_LE(e.pct_of_peak, 100.0) << e.label;
  }
}

TEST(Roofline, SustainedFractionsInPlausibleBand) {
  // Paper: 46-91% of peak across the fourteen layers. Our simulator lands
  // every layer in a plausible mid band; the AI-driven spread between the
  // extremes is weaker than on real silicon because the model overlaps
  // most memory latency at these N-scaled shapes (see EXPERIMENTS.md).
  EnginePolicy policy = EnginePolicy::opt6loop();
  const auto entries = run_roofline(sim::a64fx(), policy, 608, 256);
  for (const auto& e : entries) {
    EXPECT_GT(e.pct_of_peak, 20.0) << e.label;
    EXPECT_LE(e.pct_of_peak, 100.0) << e.label;
  }
}

}  // namespace
}  // namespace vlacnn::core

// Runtime subsystem: ThreadPool semantics, deterministic record merging,
// per-stream RNG reproducibility, workspace growth, and bitwise equivalence
// of the intra-op parallel GEMM / Winograd paths with their serial ones.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "core/conv_engine.hpp"
#include "dnn/exec_context.hpp"
#include "dnn/models.hpp"
#include "gemm/gemm_opt6.hpp"
#include "runtime/batch_scheduler.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/machine_config.hpp"
#include "sim/sim_context.hpp"
#include "test_util.hpp"
#include "winograd/winograd_conv.hpp"

namespace vlacnn::runtime {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryItemExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(103);
  pool.parallel_for(103, [&](int i, int w) {
    ASSERT_GE(w, 0);
    ASSERT_LT(w, 4);
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkingIsDeterministic) {
  ThreadPool pool(3);
  std::vector<int> owner_a(32, -1), owner_b(32, -1);
  pool.parallel_for(32, [&](int i, int w) { owner_a[static_cast<std::size_t>(i)] = w; });
  pool.parallel_for(32, [&](int i, int w) { owner_b[static_cast<std::size_t>(i)] = w; });
  EXPECT_EQ(owner_a, owner_b);
  // Static contiguous chunks: owners are non-decreasing over items.
  for (std::size_t i = 1; i < owner_a.size(); ++i)
    EXPECT_GE(owner_a[i], owner_a[i - 1]);
}

TEST(ThreadPool, NestedCallRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(2, [&](int, int w) {
    // A nested parallel_for from a worker must not deadlock; it runs inline
    // on the same worker.
    pool.parallel_for(5, [&](int, int inner_w) {
      EXPECT_EQ(inner_w, w);
      total.fetch_add(1);
    });
  });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [&](int i, int) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a failed job.
  std::atomic<int> n{0};
  pool.parallel_for(4, [&](int, int) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 4);
}

// TSan-covered: parallel_for's documented contract is that concurrent calls
// from different external threads serialize on submit_mu_ — both callers
// must still run every one of their items exactly once, with no cross-talk.
TEST(ThreadPool, ConcurrentExternalCallersSerializeSafely) {
  ThreadPool pool(4);
  constexpr int kItems = 200;
  std::vector<std::atomic<int>> hits_a(kItems), hits_b(kItems);
  std::thread other([&] {
    pool.parallel_for(kItems, [&](int i, int) {
      hits_a[static_cast<std::size_t>(i)].fetch_add(1);
    });
  });
  pool.parallel_for(kItems, [&](int i, int) {
    hits_b[static_cast<std::size_t>(i)].fetch_add(1);
  });
  other.join();
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits_a[static_cast<std::size_t>(i)].load(), 1) << i;
    EXPECT_EQ(hits_b[static_cast<std::size_t>(i)].load(), 1) << i;
  }
}

TEST(ThreadPool, PostedTasksAllRunOnWorkers) {
  ThreadPool pool(3);
  constexpr int kTasks = 64;
  std::atomic<int> ran{0};
  for (int i = 0; i < kTasks; ++i)
    pool.post([&](int worker) {
      EXPECT_GE(worker, 0);
      EXPECT_LT(worker, 3);
      ran.fetch_add(1);
    });
  // post() is non-blocking; tasks drain asynchronously.
  while (pool.pending_tasks() > 0) std::this_thread::yield();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, ParallelForInsideTaskRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.post([&](int w) {
    // Nested data parallelism from a posted task must not deadlock on the
    // full-pool barrier; it degrades to an inline loop on this worker.
    pool.parallel_for(7, [&](int, int inner_w) {
      EXPECT_EQ(inner_w, w);
      total.fetch_add(1);
    });
  });
  while (pool.pending_tasks() > 0) std::this_thread::yield();
  EXPECT_EQ(total.load(), 7);
}

// ------------------------------------------------------------- record merge

TEST(LayerRecords, MergeIsDeterministicAndOrderAware) {
  dnn::LayerRecord a;
  a.name = "conv 8 3x3/1";
  a.items = 3;
  a.flops = 300.0;
  a.cycles = 30;
  a.wall_seconds = 0.5;
  dnn::LayerRecord b = a;
  b.items = 5;
  b.flops = 500.0;
  b.cycles = 50;
  b.wall_seconds = 0.2;
  const auto merged = dnn::merge_layer_records({{a}, {}, {b}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].items, 8);
  EXPECT_DOUBLE_EQ(merged[0].flops, 800.0);
  EXPECT_EQ(merged[0].cycles, 80u);
  EXPECT_DOUBLE_EQ(merged[0].wall_seconds, 0.5);  // max: barrier semantics
  // Mismatched layer sequences are rejected.
  dnn::LayerRecord other;
  other.name = "maxpool 2x2/2";
  EXPECT_THROW((void)dnn::merge_layer_records({{a}, {other}}), std::exception);
}

// ------------------------------------------------------------- RNG streams

TEST(RngStreams, StreamsAreInterleavingIndependent) {
  // Draws from stream k must not depend on what other streams have drawn —
  // the regression guard for per-batch-item reproducibility regardless of
  // worker interleaving (Network::next_seed-style derived seeds mix only
  // static identifiers, never execution order).
  Rng s0 = Rng::for_stream(42, 0);
  Rng s1 = Rng::for_stream(42, 1);
  std::vector<std::uint64_t> interleaved;
  for (int i = 0; i < 8; ++i) {
    interleaved.push_back(s0.next_u64());
    (void)s1.next_u64();  // interleave draws from another stream
  }
  Rng fresh = Rng::for_stream(42, 0);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(fresh.next_u64(), interleaved[static_cast<std::size_t>(i)]);
  // Distinct streams differ.
  Rng a = Rng::for_stream(42, 0), bstream = Rng::for_stream(42, 1);
  EXPECT_NE(a.next_u64(), bstream.next_u64());
}

TEST(RngStreams, BatchItemValuesIndependentOfBatchSize) {
  dnn::Tensor small(2, 3, 4, 4);
  dnn::Tensor large(6, 3, 4, 4);
  small.randomize_batch(7);
  large.randomize_batch(7);
  for (int b = 0; b < 2; ++b)
    EXPECT_EQ(std::memcmp(small.item_data(b), large.item_data(b),
                          small.item_size() * sizeof(float)),
              0);
  // Items are filled per-stream, so fill order doesn't matter either.
  dnn::Tensor reversed(2, 3, 4, 4);
  reversed.randomize_item(1, 7);
  reversed.randomize_item(0, 7);
  EXPECT_EQ(std::memcmp(reversed.data(), small.data(),
                        small.size() * sizeof(float)),
            0);
}

// -------------------------------------------------------- workspace growth

TEST(ExecContextWorkspace, GrowsGeometricallyAndStaysAligned) {
  vla::VectorEngine eng(512);
  dnn::ExecContext ctx(eng);
  float* p = ctx.workspace(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 256, 0u);
  const std::size_t cap0 = ctx.workspace_capacity();
  EXPECT_GE(cap0, 100u);
  // A request within capacity must not reallocate.
  ctx.workspace(cap0);
  EXPECT_EQ(ctx.workspace_capacity(), cap0);
  // A request one past capacity grows at least geometrically (1.5x).
  p = ctx.workspace(cap0 + 1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 256, 0u);
  EXPECT_GE(ctx.workspace_capacity(), cap0 + cap0 / 2);
  // A sequence of +1 requests reallocates O(log n) times, not n times.
  std::size_t reallocs = 0;
  std::size_t cap = ctx.workspace_capacity();
  for (std::size_t want = cap + 1; want < 200000; ++want) {
    ctx.workspace(want);
    if (ctx.workspace_capacity() != cap) {
      ++reallocs;
      cap = ctx.workspace_capacity();
    }
  }
  EXPECT_LE(reallocs, 40u);
}

// ------------------------------------------------------- intra-op equality

TEST(IntraOp, Gemm6ParallelMatchesSerialBitwise) {
  const int M = 96, N = 200, K = 64;
  const auto a = test::random_vec(static_cast<std::size_t>(M) * K, 1);
  const auto b = test::random_vec(static_cast<std::size_t>(K) * N, 2);
  std::vector<float> c_serial(static_cast<std::size_t>(M) * N, 0.0f);
  std::vector<float> c_par = c_serial;

  gemm::Opt6Config cfg;
  cfg.blocks = {16, 128, 64};
  vla::VectorEngine eng(512);
  {
    gemm::Gemm6 g(cfg);
    g(eng, M, N, K, 1.0f, a.data(), K, b.data(), N, c_serial.data(), N);
  }
  {
    ThreadPool pool(4);
    gemm::Gemm6 g(cfg);
    g.set_intra_op_pool(&pool);
    g(eng, M, N, K, 1.0f, a.data(), K, b.data(), N, c_par.data(), N);
  }
  EXPECT_EQ(std::memcmp(c_serial.data(), c_par.data(),
                        c_serial.size() * sizeof(float)),
            0);
}

TEST(IntraOp, WinogradParallelMatchesSerialBitwise) {
  dnn::ConvDesc d;
  d.in_c = 8;
  d.in_h = d.in_w = 30;
  d.out_c = 12;
  d.ksize = 3;
  d.stride = 1;
  d.pad = 1;
  const auto input =
      test::random_vec(static_cast<std::size_t>(d.in_c) * d.in_h * d.in_w, 3);
  const auto weights =
      test::random_vec(static_cast<std::size_t>(d.weight_count()), 4);
  const std::size_t out_n =
      static_cast<std::size_t>(d.out_c) * d.out_h() * d.out_w();
  std::vector<float> out_serial(out_n, 0.0f), out_par(out_n, 0.0f);

  vla::VectorEngine eng(512);
  {
    winograd::WinogradConv wino;
    wino.run(eng, d, input.data(), weights.data(), out_serial.data());
  }
  {
    ThreadPool pool(4);
    winograd::WinogradConv wino;
    wino.set_intra_op_pool(&pool);
    wino.run(eng, d, input.data(), weights.data(), out_par.data());
  }
  EXPECT_EQ(std::memcmp(out_serial.data(), out_par.data(),
                        out_n * sizeof(float)),
            0);
}

TEST(IntraOp, SimulatedRunsStaySerial) {
  // An instrumented engine must never fan out (the timing model is a single
  // instruction stream): the pool being attached must not change numerics
  // or crash, and cycles must accumulate.
  sim::SimContext sctx(sim::rvv_gem5());
  vla::VectorEngine eng(sctx);
  ThreadPool pool(4);
  winograd::WinogradConv wino;
  wino.set_intra_op_pool(&pool);
  dnn::ConvDesc d;
  d.in_c = 4;
  d.in_h = d.in_w = 18;
  d.out_c = 4;
  const auto input =
      test::random_vec(static_cast<std::size_t>(d.in_c) * d.in_h * d.in_w, 5);
  const auto weights =
      test::random_vec(static_cast<std::size_t>(d.weight_count()), 6);
  std::vector<float> out(static_cast<std::size_t>(d.out_c) * d.out_h() *
                         d.out_w());
  wino.run(eng, d, input.data(), weights.data(), out.data());
  EXPECT_GT(sctx.cycles(), 0u);
}

// ------------------------------------------------------ scheduler records

// ------------------------------------------------- pipelined submit / wait

TEST(BatchScheduler, SubmitWaitMatchesRunBitwise) {
  auto net = dnn::build_vgg16(32, 4);
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  SchedulerConfig cfg;
  cfg.threads = 2;
  BatchScheduler sched(engine, cfg);

  dnn::Tensor input(3, net->in_c(), net->in_h(), net->in_w());
  input.randomize_batch(5);
  const dnn::Tensor& ref = sched.run(*net, input);
  std::vector<float> ref_copy(ref.data(), ref.data() + ref.size());
  const auto ref_records = sched.records();

  dnn::Tensor input2(3, net->in_c(), net->in_h(), net->in_w());
  input2.randomize_batch(5);
  const BatchTicket ticket = sched.submit(*net, std::move(input2));
  BatchResult res = sched.wait(ticket);
  ASSERT_EQ(res.output.size(), ref_copy.size());
  EXPECT_EQ(std::memcmp(res.output.data(), ref_copy.data(),
                        ref_copy.size() * sizeof(float)),
            0);
  EXPECT_GT(res.compute_seconds, 0.0);
  ASSERT_EQ(res.records.size(), ref_records.size());
  for (std::size_t i = 0; i < res.records.size(); ++i) {
    EXPECT_EQ(res.records[i].name, ref_records[i].name);
    EXPECT_EQ(res.records[i].algo, ref_records[i].algo);
    EXPECT_EQ(res.records[i].items, ref_records[i].items);
    EXPECT_DOUBLE_EQ(res.records[i].flops, ref_records[i].flops);
  }
}

TEST(BatchScheduler, PipelinedSubmitsCompleteFifoAndCorrect) {
  auto net = dnn::build_vgg16(32, 4);
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  SchedulerConfig cfg;
  cfg.threads = 2;
  BatchScheduler sched(engine, cfg);

  // Keep kSlots batches in flight: submit k+1 before waiting k, the
  // admission/packing-overlaps-execution pattern the serving layer uses.
  constexpr int kBatches = 5;
  std::vector<std::vector<float>> outputs;
  BatchTicket prev{};
  for (int k = 0; k < kBatches; ++k) {
    dnn::Tensor in(2, net->in_c(), net->in_h(), net->in_w());
    in.randomize_batch(static_cast<std::uint64_t>(100 + k));
    const BatchTicket t = sched.submit(*net, std::move(in));
    EXPECT_EQ(t.id, static_cast<std::uint64_t>(k + 1));  // FIFO ticket ids
    if (prev.id != 0) {
      BatchResult r = sched.wait(prev);
      outputs.emplace_back(r.output.data(),
                           r.output.data() + r.output.size());
    }
    prev = t;
  }
  BatchResult last = sched.wait(prev);
  outputs.emplace_back(last.output.data(),
                       last.output.data() + last.output.size());
  ASSERT_EQ(outputs.size(), static_cast<std::size_t>(kBatches));

  // Each pipelined batch must equal the synchronous run of the same input.
  for (int k = 0; k < kBatches; ++k) {
    dnn::Tensor in(2, net->in_c(), net->in_h(), net->in_w());
    in.randomize_batch(static_cast<std::uint64_t>(100 + k));
    const dnn::Tensor& ref = sched.run(*net, in);
    ASSERT_EQ(outputs[static_cast<std::size_t>(k)].size(), ref.size());
    EXPECT_EQ(std::memcmp(outputs[static_cast<std::size_t>(k)].data(),
                          ref.data(), ref.size() * sizeof(float)),
              0)
        << "batch " << k;
  }
}

TEST(BatchScheduler, TicketsAreSingleUse) {
  auto net = dnn::build_vgg16(32, 4);
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  BatchScheduler sched(engine, SchedulerConfig{});
  dnn::Tensor in(1, net->in_c(), net->in_h(), net->in_w());
  in.randomize_batch(3);
  const BatchTicket t = sched.submit(*net, std::move(in));
  (void)sched.wait(t);
  EXPECT_THROW((void)sched.wait(t), InvalidArgument);       // already waited
  EXPECT_THROW((void)sched.wait(BatchTicket{}), InvalidArgument);
  EXPECT_THROW((void)sched.wait(BatchTicket{99}), InvalidArgument);  // never issued
}

TEST(BatchScheduler, OutOfOrderWaitAcrossAllSlots) {
  // Tickets complete FIFO but may be COLLECTED in any order: fill every
  // kSlots slot, then wait newest-first. Each result must still carry its
  // own batch's output.
  auto net = dnn::build_vgg16(32, 4);
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  SchedulerConfig cfg;
  cfg.threads = 2;
  BatchScheduler sched(engine, cfg);

  std::vector<BatchTicket> tickets;
  for (int k = 0; k < BatchScheduler::kSlots; ++k) {
    dnn::Tensor in(2, net->in_c(), net->in_h(), net->in_w());
    in.randomize_batch(static_cast<std::uint64_t>(500 + k));
    tickets.push_back(sched.submit(*net, std::move(in)));
  }
  std::vector<std::vector<float>> outs(tickets.size());
  for (int k = BatchScheduler::kSlots - 1; k >= 0; --k) {
    BatchResult r = sched.wait(tickets[static_cast<std::size_t>(k)]);
    outs[static_cast<std::size_t>(k)].assign(
        r.output.data(), r.output.data() + r.output.size());
  }
  for (int k = 0; k < BatchScheduler::kSlots; ++k) {
    dnn::Tensor in(2, net->in_c(), net->in_h(), net->in_w());
    in.randomize_batch(static_cast<std::uint64_t>(500 + k));
    const dnn::Tensor& ref = sched.run(*net, in);
    const auto& got = outs[static_cast<std::size_t>(k)];
    ASSERT_EQ(got.size(), ref.size()) << k;
    EXPECT_EQ(std::memcmp(got.data(), ref.data(), ref.size() * sizeof(float)),
              0)
        << k;
  }
}

TEST(BatchScheduler, ItemFailuresAreIsolatedPerRequest) {
  // A kernel throwing for every item no longer fails the batch wholesale:
  // wait() returns normally with every item marked failed in item_errors.
  auto net = dnn::build_vgg16(32, 4);
  for (ExecutorKind kind : {ExecutorKind::Serial, ExecutorKind::Graph}) {
    core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
    SchedulerConfig cfg;
    cfg.threads = 2;
    cfg.executor = kind;
    BatchScheduler sched(engine, cfg);
    sched.test_item_hook = [](int layer, int item) {
      if (layer == 1 && item >= 0)
        throw std::runtime_error("injected layer failure");
    };
    dnn::Tensor in(4, net->in_c(), net->in_h(), net->in_w());
    in.randomize_batch(9);
    BatchResult failed = sched.wait(sched.submit(*net, std::move(in)));
    ASSERT_EQ(failed.item_errors.size(), 4u);
    for (int b = 0; b < 4; ++b) {
      ASSERT_NE(failed.item_errors[static_cast<std::size_t>(b)], nullptr)
          << "item " << b;
      EXPECT_THROW(std::rethrow_exception(
                       failed.item_errors[static_cast<std::size_t>(b)]),
                   std::runtime_error);
    }

    // A failed batch must not wedge the scheduler: the next one succeeds.
    sched.test_item_hook = nullptr;
    dnn::Tensor ok(4, net->in_c(), net->in_h(), net->in_w());
    ok.randomize_batch(9);
    BatchResult r = sched.wait(sched.submit(*net, std::move(ok)));
    EXPECT_TRUE(r.item_errors.empty());
    EXPECT_EQ(r.records.size(), net->num_layers());
    EXPECT_GT(r.output.size(), 0u);
  }
}

TEST(BatchScheduler, OneFailedItemLeavesSiblingsBitIdentical) {
  // The per-item isolation pin (both executors): item 1 throwing mid-layer
  // fails only its own request — every other item's output is bit-identical
  // to a fault-free run, and the scheduler keeps serving afterwards.
  auto net = dnn::build_vgg16(32, 4);
  constexpr int kItems = 4;
  for (ExecutorKind kind : {ExecutorKind::Serial, ExecutorKind::Graph}) {
    core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
    SchedulerConfig cfg;
    cfg.threads = 2;
    cfg.executor = kind;
    BatchScheduler sched(engine, cfg);
    const auto make_in = [&] {
      dnn::Tensor in(kItems, net->in_c(), net->in_h(), net->in_w());
      in.randomize_batch(31);
      return in;
    };
    // Fault-free reference first (the hook is installed afterwards).
    BatchResult ref = sched.wait(sched.submit(*net, make_in()));
    ASSERT_TRUE(ref.item_errors.empty());

    sched.test_item_hook = [](int layer, int item) {
      if (layer == 1 && item == 1)
        throw std::runtime_error("injected item-1 failure");
    };
    BatchResult res = sched.wait(sched.submit(*net, make_in()));
    ASSERT_EQ(res.item_errors.size(), static_cast<std::size_t>(kItems));
    for (int b = 0; b < kItems; ++b) {
      if (b == 1) {
        EXPECT_NE(res.item_errors[1], nullptr);
        continue;
      }
      ASSERT_EQ(res.item_errors[static_cast<std::size_t>(b)], nullptr)
          << "item " << b << " collaterally failed";
      EXPECT_EQ(std::memcmp(res.output.item_data(b), ref.output.item_data(b),
                            res.output.item_size() * sizeof(float)),
                0)
          << "item " << b << " diverged from the fault-free run";
    }

    // No dangling state: the very next batch is clean and bit-identical.
    sched.test_item_hook = nullptr;
    BatchResult after = sched.wait(sched.submit(*net, make_in()));
    EXPECT_TRUE(after.item_errors.empty());
    EXPECT_EQ(std::memcmp(after.output.data(), ref.output.data(),
                          ref.output.size() * sizeof(float)),
              0);
  }
}

TEST(BatchScheduler, BatchFusedFailureFailsWholeBatchViaItemErrors) {
  // A batch-fused dispatch (hook item == -1) spans every item: a throw
  // there cannot be attributed to one request, so all items fail — still
  // through item_errors, not a wait() throw.
  auto net = dnn::build_vgg16(32, 4);
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  SchedulerConfig cfg;
  cfg.threads = 2;
  BatchScheduler sched(engine, cfg);
  std::atomic<bool> saw_fused{false};
  sched.test_item_hook = [&](int, int item) {
    if (item == -1) {
      saw_fused.store(true);
      throw std::runtime_error("injected fused failure");
    }
  };
  dnn::Tensor in(4, net->in_c(), net->in_h(), net->in_w());
  in.randomize_batch(9);
  BatchResult res = sched.wait(sched.submit(*net, std::move(in)));
  if (saw_fused.load()) {  // plan-dependent: only when a layer fused
    ASSERT_EQ(res.item_errors.size(), 4u);
    for (const auto& e : res.item_errors) EXPECT_NE(e, nullptr);
  } else {
    EXPECT_TRUE(res.item_errors.empty());
  }
}

// -------------------------------------------------------- FaultInjector

TEST(FaultInjector, SameSeedSameDecisions) {
  const FaultPlan plan = FaultPlan::chaos(1234);
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (std::uint64_t batch = 0; batch < 20; ++batch)
    for (int layer = 0; layer < 8; ++layer)
      for (int chunk = 0; chunk < 4; ++chunk) {
        EXPECT_EQ(a.task_stall_ms(batch, layer, chunk),
                  b.task_stall_ms(batch, layer, chunk));
        EXPECT_EQ(a.fail_item(batch, layer, chunk),
                  b.fail_item(batch, layer, chunk));
      }
}

TEST(FaultInjector, DecisionsIndependentOfQueryOrder) {
  // Decisions hash (seed, stream, ids) — not call history — so concurrent
  // workers interleaving queries cannot perturb each other's faults.
  const FaultPlan plan = FaultPlan::chaos(77);
  FaultInjector fwd(plan);
  FaultInjector rev(plan);
  std::vector<double> a, b;
  for (int i = 0; i < 64; ++i)
    a.push_back(fwd.task_stall_ms(7, i, 0));
  for (int i = 63; i >= 0; --i)
    b.push_back(rev.task_stall_ms(7, i, 0));
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(a[static_cast<std::size_t>(i)],
              b[static_cast<std::size_t>(63 - i)]);
}

TEST(FaultInjector, SeedsDiverge) {
  FaultInjector a(FaultPlan::chaos(1));
  FaultInjector b(FaultPlan::chaos(2));
  int differ = 0;
  for (int i = 0; i < 256; ++i)
    differ += a.fail_item(0, 0, i) != b.fail_item(0, 0, i) ? 1 : 0;
  EXPECT_GT(differ, 0);
}

TEST(FaultInjector, ZeroProbabilitiesNeverFire) {
  FaultPlan plan;  // all probabilities default 0
  plan.seed = 99;
  FaultInjector inj(plan);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(inj.task_stall_ms(1, 2, i), 0.0);
    EXPECT_FALSE(inj.fail_item(1, 2, i));
    inj.maybe_fail_item(1, 2, i);  // must not throw
    inj.on_worker_task(i % 4);     // timing-only; no stall at prob 0
  }
  const FaultInjector::Stats st = inj.stats();
  EXPECT_EQ(st.task_stalls, 0u);
  EXPECT_EQ(st.worker_slows, 0u);
  EXPECT_EQ(st.item_failures, 0u);
}

TEST(FaultInjector, MaybeFailItemThrowsAndCounts) {
  FaultPlan plan;
  plan.seed = 5;
  plan.item_fail_prob = 1.0;  // every item fails
  FaultInjector inj(plan);
  EXPECT_THROW(inj.maybe_fail_item(3, 1, 0), FaultInjected);
  EXPECT_THROW(inj.maybe_fail_item(3, 1, 1), FaultInjected);
  EXPECT_EQ(inj.stats().item_failures, 2u);
}

TEST(FaultInjector, InjectedItemFaultsSurfaceAsItemErrors) {
  // End to end through the scheduler: a 100%-item-failure plan fails every
  // request via per-item isolation; the identical run without the injector
  // is clean.
  auto net = dnn::build_vgg16(32, 4);
  FaultPlan plan;
  plan.seed = 11;
  plan.item_fail_prob = 1.0;
  FaultInjector inj(plan);
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  SchedulerConfig cfg;
  cfg.threads = 2;
  cfg.fault_injector = &inj;
  BatchScheduler sched(engine, cfg);
  dnn::Tensor in(2, net->in_c(), net->in_h(), net->in_w());
  in.randomize_batch(3);
  BatchResult res = sched.wait(sched.submit(*net, std::move(in)));
  ASSERT_EQ(res.item_errors.size(), 2u);
  EXPECT_NE(res.item_errors[0], nullptr);
  EXPECT_NE(res.item_errors[1], nullptr);
  EXPECT_THROW(std::rethrow_exception(res.item_errors[0]), FaultInjected);
  EXPECT_GT(inj.stats().item_failures, 0u);
}

// ------------------------------------------------------------- Watchdog

TEST(Watchdog, WedgedBatchIsCancelledAndSchedulerRecovers) {
  // One task sleeps far past the watchdog timeout: the batch is declared
  // wedged and completes with BatchCancelled instead of blocking the slot
  // ring; the next batch runs clean. The margins are deliberately wide —
  // the truncated net's largest conv is ~1M MACs so every legit task runs
  // in well under a millisecond even under TSan, the timeout is 0.5s, and
  // the injected stall 2.5s — a loaded CI box or TSan's slowdown cannot
  // blur wedged and slow into each other.
  auto net = dnn::build_yolov3_tiny(32, 8);
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  SchedulerConfig cfg;
  cfg.threads = 2;
  cfg.executor = ExecutorKind::Graph;
  cfg.watchdog_timeout_s = 0.5;
  cfg.watchdog_poll_s = 0.01;
  BatchScheduler sched(engine, cfg);
  std::atomic<bool> armed{true};
  sched.test_item_hook = [&](int layer, int) {
    if (layer == 2 && armed.exchange(false))
      std::this_thread::sleep_for(std::chrono::milliseconds(2500));
  };
  dnn::Tensor in(2, net->in_c(), net->in_h(), net->in_w());
  in.randomize_batch(8);
  const BatchTicket t = sched.submit(*net, std::move(in));
  EXPECT_THROW((void)sched.wait(t), BatchCancelled);
  EXPECT_EQ(sched.watchdog_wedges(), 1u);

  // The stalled task returned and the batch retired: the ring is clean.
  sched.test_item_hook = nullptr;
  dnn::Tensor ok(2, net->in_c(), net->in_h(), net->in_w());
  ok.randomize_batch(8);
  BatchResult r = sched.wait(sched.submit(*net, std::move(ok)));
  EXPECT_TRUE(r.item_errors.empty());
  EXPECT_GT(r.output.size(), 0u);
}

TEST(Watchdog, HealthyTrafficIsNeverCancelled) {
  auto net = dnn::build_vgg16(32, 4);
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  SchedulerConfig cfg;
  cfg.threads = 2;
  cfg.watchdog_timeout_s = 30.0;  // far above any real batch, even on TSan
  cfg.watchdog_poll_s = 0.002;
  BatchScheduler sched(engine, cfg);
  for (int k = 0; k < 4; ++k) {
    dnn::Tensor in(2, net->in_c(), net->in_h(), net->in_w());
    in.randomize_batch(static_cast<std::uint64_t>(k));
    BatchResult r = sched.wait(sched.submit(*net, std::move(in)));
    EXPECT_TRUE(r.item_errors.empty()) << k;
  }
  EXPECT_EQ(sched.watchdog_wedges(), 0u);
}

TEST(BatchScheduler, SerialEscapeHatchMatchesGraphBitwise) {
  auto net = dnn::build_vgg16(32, 4);
  auto run_kind = [&](ExecutorKind kind) {
    core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
    SchedulerConfig cfg;
    cfg.threads = 2;
    cfg.executor = kind;
    BatchScheduler sched(engine, cfg);
    dnn::Tensor in(3, net->in_c(), net->in_h(), net->in_w());
    in.randomize_batch(77);
    BatchResult r = sched.wait(sched.submit(*net, std::move(in)));
    return std::vector<float>(r.output.data(),
                              r.output.data() + r.output.size());
  };
  const auto serial = run_kind(ExecutorKind::Serial);
  const auto graph = run_kind(ExecutorKind::Graph);
  ASSERT_EQ(serial.size(), graph.size());
  EXPECT_EQ(
      std::memcmp(serial.data(), graph.data(), serial.size() * sizeof(float)),
      0);
}

TEST(BatchScheduler, SubmitValidatesShapeSynchronously) {
  auto net = dnn::build_vgg16(32, 4);
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  BatchScheduler sched(engine, SchedulerConfig{});
  dnn::Tensor wrong(1, net->in_c() + 1, net->in_h(), net->in_w());
  EXPECT_THROW((void)sched.submit(*net, std::move(wrong)), InvalidArgument);
}

TEST(BatchScheduler, RecordsAreDeterministicAcrossRuns) {
  auto net = dnn::build_vgg16(32, 4);
  core::ConvolutionEngine engine(core::EnginePolicy::opt3loop());
  SchedulerConfig cfg;
  cfg.threads = 4;
  BatchScheduler sched(engine, cfg);
  dnn::Tensor input(6, net->in_c(), net->in_h(), net->in_w());
  input.randomize_batch(11);

  sched.run(*net, input);
  const auto first = sched.records();
  sched.run(*net, input);
  const auto second = sched.records();
  ASSERT_EQ(first.size(), second.size());
  ASSERT_EQ(first.size(), net->num_layers());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].name, second[i].name);
    EXPECT_EQ(first[i].algo, second[i].algo);
    EXPECT_EQ(first[i].items, 6);
    EXPECT_EQ(second[i].items, 6);
    EXPECT_DOUBLE_EQ(first[i].flops, second[i].flops);
  }
}

}  // namespace
}  // namespace vlacnn::runtime

// Simulation-driven per-layer algorithm selection.

#include <gtest/gtest.h>

#include "core/selector.hpp"
#include "dnn/models.hpp"
#include "test_util.hpp"

namespace vlacnn::core {
namespace {

TEST(Selector, ProducesOneChoicePerConvLayer) {
  auto net = dnn::build_yolov3(48, 6);
  const auto plan = select_per_layer(*net, sim::rvv_gem5());
  EXPECT_EQ(plan.size(), net->num_conv_layers());
  for (const auto& c : plan) {
    EXPECT_GE(c.candidates.size(), 2u);  // at least both GEMM variants
    EXPECT_GT(c.cycles, 0u);
    // The winner is the minimum of its candidates.
    for (const auto& [algo, cycles] : c.candidates)
      EXPECT_LE(c.cycles, cycles) << c.layer_name;
  }
}

TEST(Selector, WinogradOnlyOfferedForEligibleLayers) {
  auto net = dnn::build_yolov3(48, 6);  // mixes 3x3/s1, 3x3/s2, 1x1
  const auto plan = select_per_layer(*net, sim::sve_gem5().with_vlen(2048));
  for (const auto& c : plan) {
    const bool has_wino =
        std::any_of(c.candidates.begin(), c.candidates.end(), [](auto& p) {
          return p.first == ConvAlgo::Winograd;
        });
    const bool is_3x3 = c.layer_name.find("3x3") != std::string::npos;
    EXPECT_EQ(has_wino, is_3x3) << c.layer_name;
  }
}

TEST(Selector, ChoicesStableAcrossCalls) {
  // Simulated addresses depend on global allocation order, so exact cycle
  // counts may differ between back-to-back selections within one process;
  // the chosen algorithms must not (candidate gaps are far larger than the
  // address-mapping noise).
  auto net = dnn::build_yolov3(48, 4);
  const auto a = select_per_layer(*net, sim::rvv_gem5());
  const auto b = select_per_layer(*net, sim::rvv_gem5());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].algo, b[i].algo);
}

TEST(Selector, AppliedPlanPreservesNumerics) {
  // Routing layers through the plan must not change the network output
  // versus the plain optimized-GEMM path.
  auto net = dnn::build_yolov3(48, 6);
  const auto plan = select_per_layer(*net, sim::rvv_gem5());

  auto forward = [&](bool use_plan) {
    vla::VectorEngine eng(2048);
    dnn::ExecContext ctx(eng);
    ConvolutionEngine engine(EnginePolicy::opt3loop());
    engine.install(ctx);
    if (use_plan) apply_plan(plan, engine, ctx);
    dnn::Tensor input(3, 48, 48);
    Rng rng(7);
    input.randomize(rng, 0.0f, 1.0f);
    const dnn::Tensor& out = net->forward(ctx, input);
    return std::vector<float>(out.data(), out.data() + out.size());
  };
  const auto plain = forward(false);
  const auto planned = forward(true);
  EXPECT_TRUE(test::allclose(plain.data(), planned.data(), plain.size(), 5e-3f,
                             5e-3f));
}

TEST(Selector, AlgoNamesAreStable) {
  EXPECT_STREQ(to_string(ConvAlgo::Winograd), "winograd");
  EXPECT_STREQ(to_string(ConvAlgo::Direct), "direct");
  EXPECT_STREQ(to_string(ConvAlgo::Im2colGemm3), "im2col+gemm3");
  EXPECT_STREQ(to_string(ConvAlgo::Im2colGemm6), "im2col+gemm6");
}

}  // namespace
}  // namespace vlacnn::core

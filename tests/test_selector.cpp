// Simulation-driven per-layer backend selection returning a BackendPlan.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/conv_engine.hpp"
#include "core/selector.hpp"
#include "dnn/models.hpp"
#include "test_util.hpp"

namespace vlacnn::core {
namespace {

TEST(Selector, ProducesOneEntryPerConvLayer) {
  auto net = dnn::build_yolov3(48, 6);
  const BackendPlan plan = select_per_layer(*net, sim::rvv_gem5());
  EXPECT_EQ(plan.entries.size(), net->num_conv_layers());
  for (const auto& e : plan.entries) {
    EXPECT_GE(e.candidates.size(), 3u);  // both GEMMs + fused at minimum
    EXPECT_GT(e.cycles, 0u);
    // The winner is the minimum of its candidates.
    for (const auto& [backend, cycles] : e.candidates)
      EXPECT_LE(e.cycles, cycles) << e.layer_name;
  }
}

TEST(Selector, SimulatesFusedAndWinogradCandidatesWhereEligible) {
  auto net = dnn::build_yolov3(48, 6);  // mixes 3x3/s1, 3x3/s2, 1x1
  const BackendPlan plan =
      select_per_layer(*net, sim::sve_gem5().with_vlen(2048));
  for (const auto& e : plan.entries) {
    const auto has = [&](Backend b) {
      return std::any_of(e.candidates.begin(), e.candidates.end(),
                         [b](const auto& p) { return p.first == b; });
    };
    // The fused implicit-GEMM is a candidate for every layer.
    EXPECT_TRUE(has(Backend::FusedGemm6)) << e.layer_name;
    const bool is_3x3 = e.layer_name.find("3x3") != std::string::npos;
    EXPECT_EQ(has(Backend::Winograd), is_3x3) << e.layer_name;
    EXPECT_EQ(has(Backend::FusedWinograd), is_3x3) << e.layer_name;
  }
}

TEST(Selector, FusionNeverSimulatesSlowerThanItsUnfusedTwin) {
  // The fused pipelines run the same kernels minus the workspace round-trip,
  // the fill pass and the epilogue re-streams, so the simulated cycle count
  // must come out strictly cheaper — this is what makes fused backends win
  // plan entries on the VGG-style shapes.
  auto net = dnn::build_vgg16(32, 4);
  const BackendPlan plan = select_per_layer(*net, sim::sve_gem5());
  for (const auto& e : plan.entries) {
    std::uint64_t gemm6 = 0, fused6 = 0, wino = 0, fwino = 0;
    for (const auto& [backend, cycles] : e.candidates) {
      if (backend == Backend::Gemm6) gemm6 = cycles;
      if (backend == Backend::FusedGemm6) fused6 = cycles;
      if (backend == Backend::Winograd) wino = cycles;
      if (backend == Backend::FusedWinograd) fwino = cycles;
    }
    ASSERT_GT(gemm6, 0u);
    ASSERT_GT(fused6, 0u);
    EXPECT_LT(fused6, gemm6) << e.layer_name;
    if (wino != 0) EXPECT_LT(fwino, wino) << e.layer_name;
  }
}

TEST(Selector, FusedBackendsWinOnVggStyleShapes) {
  // VGG's body is 3x3/s1 at growing channel counts — exactly the shapes the
  // paper routes to careful per-layer selection. With the fused pipelines in
  // the candidate set, every winner must be an epilogue-fusing backend.
  auto net = dnn::build_vgg16(32, 4);
  const BackendPlan plan = select_per_layer(*net, sim::sve_gem5());
  ASSERT_FALSE(plan.entries.empty());
  for (const auto& e : plan.entries)
    EXPECT_TRUE(backend_fuses(e.backend))
        << e.layer_name << " -> " << to_string(e.backend);
}

TEST(Selector, ChoicesStableAcrossCalls) {
  // Simulated addresses depend on global allocation order, so exact cycle
  // counts may differ between back-to-back selections within one process;
  // the chosen backends must not (candidate gaps are far larger than the
  // address-mapping noise).
  auto net = dnn::build_yolov3(48, 4);
  const BackendPlan a = select_per_layer(*net, sim::rvv_gem5());
  const BackendPlan b = select_per_layer(*net, sim::rvv_gem5());
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i)
    EXPECT_EQ(a.entries[i].backend, b.entries[i].backend);
}

TEST(Selector, PlanPreservesNumerics) {
  // Routing layers through the selected plan must not change the network
  // output versus the uniform optimized-GEMM path beyond backend-level
  // reassociation (Winograd/direct reorder arithmetic).
  auto net = dnn::build_yolov3(48, 6);
  const BackendPlan plan = select_per_layer(*net, sim::rvv_gem5());

  auto forward = [&](BackendPlan p) {
    vla::VectorEngine eng(2048);
    dnn::ExecContext ctx(eng);
    ConvolutionEngine engine(std::move(p));
    engine.install(ctx);
    dnn::Tensor input(3, 48, 48);
    Rng rng(7);
    input.randomize(rng, 0.0f, 1.0f);
    const dnn::Tensor& out = net->forward(ctx, input);
    return std::vector<float>(out.data(), out.data() + out.size());
  };
  const auto plain = forward(BackendPlan::uniform(EnginePolicy::opt3loop()));
  const auto planned = forward(plan);
  EXPECT_TRUE(test::allclose(plain.data(), planned.data(), plain.size(), 5e-3f,
                             5e-3f));
}

TEST(Selector, BackendNamesAreStable) {
  EXPECT_STREQ(to_string(Backend::Winograd), "winograd");
  EXPECT_STREQ(to_string(Backend::FusedWinograd), "fused-winograd");
  EXPECT_STREQ(to_string(Backend::Direct), "direct");
  EXPECT_STREQ(to_string(Backend::Gemm3), "im2col+gemm3");
  EXPECT_STREQ(to_string(Backend::Gemm6), "im2col+gemm6");
  EXPECT_STREQ(to_string(Backend::FusedGemm6), "fused-gemm6");
}

}  // namespace
}  // namespace vlacnn::core

// Serve subsystem: admission-queue backpressure and shutdown draining,
// micro-batch formation policy (pure decide() table), and the pipelined
// Server end-to-end — including bit-identical outputs vs. the synchronous
// BatchScheduler::run() path and TSan-clean concurrent submission.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "core/conv_engine.hpp"
#include "dnn/models.hpp"
#include "runtime/batch_scheduler.hpp"
#include "serve/server.hpp"

namespace vlacnn::serve {
namespace {

using std::chrono::milliseconds;

InferRequest make_req(std::uint64_t id,
                      Clock::time_point arrival = Clock::time_point{},
                      Clock::time_point deadline = kNoDeadline) {
  InferRequest r;
  r.id = id;
  r.arrival = arrival;
  r.deadline = deadline;
  return r;
}

// ------------------------------------------------------------ decide() table

TEST(MicroBatcher, DecideTable) {
  BatchPolicy pol;
  pol.max_batch = 4;
  pol.max_wait = milliseconds(10);
  pol.deadline_slack = milliseconds(5);
  // Synthetic epoch: all times are offsets from t0, no real clock involved.
  const Clock::time_point t0 = Clock::time_point() + milliseconds(1000);
  const auto at = [&](int ms) { return t0 + milliseconds(ms); };

  struct Case {
    const char* label;
    int queued;
    Clock::time_point oldest;
    Clock::time_point min_deadline;
    Clock::time_point now;
    bool launch;
    Trigger trigger;
  };
  const Case cases[] = {
      {"empty batch never launches", 0, t0, kNoDeadline, at(999), false,
       Trigger::MaxWait},
      {"full batch launches immediately", 4, t0, kNoDeadline, at(0), true,
       Trigger::Full},
      {"overfull batch launches immediately", 5, t0, kNoDeadline, at(0), true,
       Trigger::Full},
      {"under max_wait: hold", 1, t0, kNoDeadline, at(5), false,
       Trigger::MaxWait},
      {"oldest waited max_wait: launch", 1, t0, kNoDeadline, at(10), true,
       Trigger::MaxWait},
      {"deadline binds before max_wait: hold until deadline-slack", 2, t0,
       at(12), at(3), false, Trigger::Deadline},
      {"deadline-slack reached: launch", 2, t0, at(12), at(7), true,
       Trigger::Deadline},
      {"far deadline leaves max_wait binding", 1, t0, at(100), at(10), true,
       Trigger::MaxWait},
      {"deadline already past: launch now", 1, t0, at(-1), at(0), true,
       Trigger::Deadline},
  };
  for (const Case& c : cases) {
    const LaunchDecision d =
        decide(pol, c.queued, c.oldest, c.min_deadline, c.now);
    EXPECT_EQ(d.launch, c.launch) << c.label;
    if (c.launch || c.queued > 0) {
      EXPECT_EQ(d.trigger, c.trigger) << c.label;
    }
  }

  // The hold case exposes the launch point so the batcher can sleep on it:
  // max_wait binding -> oldest + max_wait; deadline binding -> deadline -
  // slack.
  const LaunchDecision hold_wait =
      decide(pol, 1, t0, kNoDeadline, at(5));
  EXPECT_EQ(hold_wait.launch_by, at(10));
  const LaunchDecision hold_deadline = decide(pol, 2, t0, at(12), at(3));
  EXPECT_EQ(hold_deadline.launch_by, at(7));
}

// ----------------------------------------------------------- RequestQueue

TEST(RequestQueue, RejectOnFullBackpressure) {
  RequestQueue q(2, /*block_when_full=*/false);
  EXPECT_EQ(q.push(make_req(1)), Admit::Accepted);
  EXPECT_EQ(q.push(make_req(2)), Admit::Accepted);
  EXPECT_EQ(q.push(make_req(3)), Admit::Rejected);
  EXPECT_EQ(q.size(), 2u);
  InferRequest r;
  ASSERT_TRUE(q.pop(r));
  EXPECT_EQ(r.id, 1u);  // FIFO
  EXPECT_EQ(q.push(make_req(4)), Admit::Accepted);
  const RequestQueue::Stats s = q.stats();
  EXPECT_EQ(s.accepted, 3u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.peak_depth, 2u);
}

TEST(RequestQueue, BlockWhenFullUnblocksOnPop) {
  RequestQueue q(1, /*block_when_full=*/true);
  EXPECT_EQ(q.push(make_req(1)), Admit::Accepted);
  std::atomic<bool> second_admitted{false};
  std::thread producer([&] {
    EXPECT_EQ(q.push(make_req(2)), Admit::Accepted);
    second_admitted.store(true);
  });
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(second_admitted.load());  // still blocked on the full queue
  InferRequest r;
  ASSERT_TRUE(q.pop(r));
  EXPECT_EQ(r.id, 1u);
  producer.join();
  EXPECT_TRUE(second_admitted.load());
  ASSERT_TRUE(q.pop(r));
  EXPECT_EQ(r.id, 2u);
}

TEST(RequestQueue, CloseDrainsConsumerAndRejectsProducers) {
  RequestQueue q(8, /*block_when_full=*/false);
  EXPECT_EQ(q.push(make_req(1)), Admit::Accepted);
  EXPECT_EQ(q.push(make_req(2)), Admit::Accepted);
  q.close();
  EXPECT_EQ(q.push(make_req(3)), Admit::Closed);
  // Admitted requests drain...
  InferRequest r;
  ASSERT_TRUE(q.pop(r));
  EXPECT_EQ(r.id, 1u);
  ASSERT_TRUE(q.pop(r));
  EXPECT_EQ(r.id, 2u);
  // ...then the consumer learns the stream ended.
  EXPECT_FALSE(q.pop(r));
  EXPECT_EQ(q.pop_wait_until(r, Clock::now() + milliseconds(5)),
            RequestQueue::PopStatus::Closed);
}

TEST(RequestQueue, CloseWakesBlockedProducer) {
  RequestQueue q(1, /*block_when_full=*/true);
  EXPECT_EQ(q.push(make_req(1)), Admit::Accepted);
  std::atomic<int> verdict{-1};
  std::thread producer(
      [&] { verdict.store(static_cast<int>(q.push(make_req(2)))); });
  std::this_thread::sleep_for(milliseconds(20));
  q.close();
  producer.join();
  EXPECT_EQ(verdict.load(), static_cast<int>(Admit::Closed));
}

TEST(RequestQueue, PopWaitUntilTimesOut) {
  RequestQueue q(4, false);
  InferRequest r;
  const auto t0 = Clock::now();
  EXPECT_EQ(q.pop_wait_until(r, t0 + milliseconds(20)),
            RequestQueue::PopStatus::TimedOut);
  EXPECT_GE(Clock::now() - t0, milliseconds(20));
}

TEST(RequestQueue, StampsArrivalOnAdmission) {
  RequestQueue q(4, false);
  const auto before = Clock::now();
  EXPECT_EQ(q.push(make_req(7)), Admit::Accepted);
  InferRequest r;
  ASSERT_TRUE(q.pop(r));
  EXPECT_GE(r.arrival, before);
  EXPECT_LE(r.arrival, Clock::now());
  // A pre-set arrival (synthetic processes in tests) is preserved.
  const auto synthetic = Clock::time_point() + milliseconds(5);
  EXPECT_EQ(q.push(make_req(8, synthetic)), Admit::Accepted);
  ASSERT_TRUE(q.pop(r));
  EXPECT_EQ(r.arrival, synthetic);
}

// ----------------------------------------------------- MicroBatcher (live)

TEST(MicroBatcher, FullBatchesThenShutdownDrain) {
  RequestQueue q(16, false);
  for (std::uint64_t i = 0; i < 5; ++i)
    ASSERT_EQ(q.push(make_req(i)), Admit::Accepted);
  BatchPolicy pol;
  pol.max_batch = 2;
  pol.max_wait = std::chrono::seconds(10);  // only fullness/drain can launch
  MicroBatcher mb(q, pol);

  auto b1 = mb.next_batch();
  ASSERT_TRUE(b1.has_value());
  EXPECT_EQ(b1->trigger, Trigger::Full);
  ASSERT_EQ(b1->requests.size(), 2u);
  EXPECT_EQ(b1->requests[0].id, 0u);
  EXPECT_EQ(b1->requests[1].id, 1u);
  auto b2 = mb.next_batch();
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(b2->trigger, Trigger::Full);
  q.close();
  // The odd request out ships as the shutdown drain's partial batch.
  auto b3 = mb.next_batch();
  ASSERT_TRUE(b3.has_value());
  EXPECT_EQ(b3->trigger, Trigger::Drain);
  ASSERT_EQ(b3->requests.size(), 1u);
  EXPECT_EQ(b3->requests[0].id, 4u);
  EXPECT_FALSE(mb.next_batch().has_value());
}

TEST(MicroBatcher, BackloggedQueueFormsFullBatchesDespiteStaleOldest) {
  // Overload regression guard: requests that piled up while a previous
  // batch computed are all older than max_wait. The batcher must greedily
  // drain them into full batches, not launch the stale oldest alone.
  RequestQueue q(16, false);
  const auto stale = Clock::now() - std::chrono::seconds(1);
  for (std::uint64_t i = 0; i < 8; ++i)
    ASSERT_EQ(q.push(make_req(i, stale)), Admit::Accepted);
  BatchPolicy pol;
  pol.max_batch = 4;
  pol.max_wait = milliseconds(1);  // long expired for every queued request
  MicroBatcher mb(q, pol);
  for (int b = 0; b < 2; ++b) {
    auto fb = mb.next_batch();
    ASSERT_TRUE(fb.has_value());
    EXPECT_EQ(fb->requests.size(), 4u) << "batch " << b;
    EXPECT_EQ(fb->trigger, Trigger::Full) << "batch " << b;
  }
  q.close();
}

TEST(RequestQueue, TryPopNeverBlocks) {
  RequestQueue q(4, false);
  InferRequest r;
  EXPECT_EQ(q.try_pop(r), RequestQueue::PopStatus::TimedOut);  // empty
  ASSERT_EQ(q.push(make_req(1)), Admit::Accepted);
  EXPECT_EQ(q.try_pop(r), RequestQueue::PopStatus::Ok);
  EXPECT_EQ(r.id, 1u);
  q.close();
  EXPECT_EQ(q.try_pop(r), RequestQueue::PopStatus::Closed);
}

TEST(MicroBatcher, MaxWaitLaunchesPartialBatch) {
  RequestQueue q(16, false);
  BatchPolicy pol;
  pol.max_batch = 8;
  pol.max_wait = milliseconds(10);
  MicroBatcher mb(q, pol);
  const auto t0 = Clock::now();
  ASSERT_EQ(q.push(make_req(1)), Admit::Accepted);
  auto b = mb.next_batch();
  const auto elapsed = Clock::now() - t0;
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->trigger, Trigger::MaxWait);
  EXPECT_EQ(b->requests.size(), 1u);
  EXPECT_GE(elapsed, milliseconds(10));  // held the full launch window
  q.close();
}

TEST(MicroBatcher, DeadlineCutsTheWaitShort) {
  RequestQueue q(16, false);
  BatchPolicy pol;
  pol.max_batch = 8;
  pol.max_wait = milliseconds(500);
  MicroBatcher mb(q, pol);
  const auto t0 = Clock::now();
  ASSERT_EQ(q.push(make_req(1, {}, t0 + milliseconds(20))), Admit::Accepted);
  auto b = mb.next_batch();
  const auto elapsed = Clock::now() - t0;
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->trigger, Trigger::Deadline);
  EXPECT_LT(elapsed, milliseconds(400));  // did not wait out max_wait
  q.close();
}

// ------------------------------------------------------------------ Server

std::unique_ptr<dnn::Network> small_net() { return dnn::build_vgg16(32, 4); }

TEST(Server, OutputsBitIdenticalToSynchronousRun) {
  auto net = small_net();
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  runtime::SchedulerConfig cfg;
  cfg.threads = 2;
  runtime::BatchScheduler sched(engine, cfg);

  constexpr int kRequests = 10;
  ServerConfig scfg;
  scfg.policy.max_batch = 4;
  scfg.policy.max_wait = milliseconds(1);
  scfg.queue_capacity = kRequests;
  scfg.block_when_full = true;
  Server server(sched, *net, scfg);
  server.start();
  for (int r = 0; r < kRequests; ++r) {
    dnn::Tensor in(1, net->in_c(), net->in_h(), net->in_w());
    in.randomize_item(0, 777 + static_cast<std::uint64_t>(r));
    ASSERT_EQ(server.submit(static_cast<std::uint64_t>(r), std::move(in)),
              Admit::Accepted);
  }
  server.stop();
  const std::vector<Completion> done = server.drain_completions();
  ASSERT_EQ(done.size(), static_cast<std::size_t>(kRequests));

  // Reference: the same request set through the synchronous run() path as
  // one batch. Per-item kernels make each request's output independent of
  // batch grouping, so every async result must match bit for bit.
  dnn::Tensor ref_in(kRequests, net->in_c(), net->in_h(), net->in_w());
  // Requests were filled from stream 0 of seed 777+r; rebuild those exact
  // bytes per item (randomize_item(r, seed) would use stream r instead).
  for (int r = 0; r < kRequests; ++r) {
    dnn::Tensor one(1, net->in_c(), net->in_h(), net->in_w());
    one.randomize_item(0, 777 + static_cast<std::uint64_t>(r));
    std::memcpy(ref_in.item_data(r), one.data(),
                one.size() * sizeof(float));
  }
  const dnn::Tensor& ref_out = sched.run(*net, ref_in);

  std::set<std::uint64_t> seen;
  for (const Completion& c : done) {
    const auto id = c.trace.id;
    ASSERT_LT(id, static_cast<std::uint64_t>(kRequests));
    EXPECT_TRUE(seen.insert(id).second) << "duplicate completion " << id;
    ASSERT_EQ(c.output.size(), ref_out.item_size());
    EXPECT_EQ(std::memcmp(c.output.data(),
                          ref_out.item_data(static_cast<int>(id)),
                          c.output.size() * sizeof(float)),
              0)
        << "request " << id;
    EXPECT_GE(c.trace.queue_ms, 0.0);
    EXPECT_GT(c.trace.compute_ms, 0.0);
    EXPECT_GE(c.trace.total_ms, c.trace.compute_ms);
    EXPECT_GE(c.trace.batch_items, 1);
    EXPECT_LE(c.trace.batch_items, scfg.policy.max_batch);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GE(stats.batches, 3u);  // 10 requests, batches of <= 4
}

TEST(Server, ConcurrentSubmitCompletesEveryRequest) {
  auto net = small_net();
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  runtime::SchedulerConfig cfg;
  cfg.threads = 2;
  runtime::BatchScheduler sched(engine, cfg);

  ServerConfig scfg;
  scfg.policy.max_batch = 3;
  scfg.policy.max_wait = milliseconds(1);
  scfg.queue_capacity = 4;  // small: exercises producer backpressure
  scfg.block_when_full = true;
  Server server(sched, *net, scfg);
  server.start();

  constexpr int kThreads = 4, kPerThread = 6;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        dnn::Tensor in(1, net->in_c(), net->in_h(), net->in_w());
        const auto id = static_cast<std::uint64_t>(t * 100 + i);
        in.randomize_item(0, id);
        ASSERT_EQ(server.submit(id, std::move(in)), Admit::Accepted);
      }
    });
  }
  for (auto& t : producers) t.join();
  server.stop();

  const std::vector<Completion> done = server.drain_completions();
  ASSERT_EQ(done.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::set<std::uint64_t> seen;
  for (const Completion& c : done)
    EXPECT_TRUE(seen.insert(c.trace.id).second)
        << "duplicate completion " << c.trace.id;
  EXPECT_EQ(server.stats().completed,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Server, RejectsWhenQueueFullBeforeStart) {
  auto net = small_net();
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  runtime::BatchScheduler sched(engine, runtime::SchedulerConfig{});

  ServerConfig scfg;
  scfg.policy.max_batch = 2;
  scfg.policy.max_wait = milliseconds(0);
  scfg.queue_capacity = 2;
  scfg.block_when_full = false;
  Server server(sched, *net, scfg);
  // Not started: nothing consumes, so the bounded queue fills
  // deterministically and the third submit sheds load.
  const auto mk = [&](std::uint64_t id) {
    dnn::Tensor in(1, net->in_c(), net->in_h(), net->in_w());
    in.randomize_item(0, id);
    return in;
  };
  EXPECT_EQ(server.submit(0, mk(0)), Admit::Accepted);
  EXPECT_EQ(server.submit(1, mk(1)), Admit::Accepted);
  EXPECT_EQ(server.submit(2, mk(2)), Admit::Rejected);
  server.start();
  server.stop();  // drains the two admitted requests
  EXPECT_EQ(server.drain_completions().size(), 2u);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.rejected, 1u);
}

TEST(Server, DeadlineMissesAreCounted) {
  auto net = small_net();
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  runtime::BatchScheduler sched(engine, runtime::SchedulerConfig{});

  ServerConfig scfg;
  scfg.policy.max_batch = 1;  // launch immediately
  scfg.queue_capacity = 8;
  scfg.block_when_full = true;
  Server server(sched, *net, scfg);
  server.start();
  for (std::uint64_t r = 0; r < 3; ++r) {
    dnn::Tensor in(1, net->in_c(), net->in_h(), net->in_w());
    in.randomize_item(0, r);
    // A deadline that already passed cannot be met: every request misses.
    ASSERT_EQ(server.submit(r, std::move(in),
                            Clock::now() - milliseconds(1)),
              Admit::Accepted);
  }
  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.deadline_misses, 3u);
  for (const Completion& c : server.drain_completions())
    EXPECT_FALSE(c.trace.deadline_met);
}

TEST(Server, RejectsWrongShapeSynchronously) {
  auto net = small_net();
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  runtime::BatchScheduler sched(engine, runtime::SchedulerConfig{});
  Server server(sched, *net, ServerConfig{});
  dnn::Tensor wrong(1, net->in_c(), net->in_h() + 1, net->in_w());
  EXPECT_THROW((void)server.submit(1, std::move(wrong)), InvalidArgument);
}

}  // namespace
}  // namespace vlacnn::serve

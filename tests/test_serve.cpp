// Serve subsystem: admission-queue backpressure and shutdown draining,
// micro-batch formation policy (pure decide() table), and the pipelined
// Server end-to-end — including bit-identical outputs vs. the synchronous
// BatchScheduler::run() path and TSan-clean concurrent submission.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "core/conv_engine.hpp"
#include "core/selector.hpp"
#include "dnn/models.hpp"
#include "gemm/blocking.hpp"
#include "runtime/batch_scheduler.hpp"
#include "runtime/fault_injector.hpp"
#include "serve/overload_governor.hpp"
#include "serve/replanner.hpp"
#include "serve/server.hpp"

namespace vlacnn::serve {
namespace {

using std::chrono::milliseconds;

InferRequest make_req(std::uint64_t id,
                      Clock::time_point arrival = Clock::time_point{},
                      Clock::time_point deadline = kNoDeadline) {
  InferRequest r;
  r.id = id;
  r.arrival = arrival;
  r.deadline = deadline;
  return r;
}

// ------------------------------------------------------------ decide() table

TEST(MicroBatcher, DecideTable) {
  BatchPolicy pol;
  pol.max_batch = 4;
  pol.max_wait = milliseconds(10);
  pol.deadline_slack = milliseconds(5);
  // Synthetic epoch: all times are offsets from t0, no real clock involved.
  const Clock::time_point t0 = Clock::time_point() + milliseconds(1000);
  const auto at = [&](int ms) { return t0 + milliseconds(ms); };

  struct Case {
    const char* label;
    int queued;
    Clock::time_point oldest;
    Clock::time_point min_deadline;
    Clock::time_point now;
    bool launch;
    Trigger trigger;
  };
  const Case cases[] = {
      {"empty batch never launches", 0, t0, kNoDeadline, at(999), false,
       Trigger::MaxWait},
      {"full batch launches immediately", 4, t0, kNoDeadline, at(0), true,
       Trigger::Full},
      {"overfull batch launches immediately", 5, t0, kNoDeadline, at(0), true,
       Trigger::Full},
      {"under max_wait: hold", 1, t0, kNoDeadline, at(5), false,
       Trigger::MaxWait},
      {"oldest waited max_wait: launch", 1, t0, kNoDeadline, at(10), true,
       Trigger::MaxWait},
      {"deadline binds before max_wait: hold until deadline-slack", 2, t0,
       at(12), at(3), false, Trigger::Deadline},
      {"deadline-slack reached: launch", 2, t0, at(12), at(7), true,
       Trigger::Deadline},
      {"far deadline leaves max_wait binding", 1, t0, at(100), at(10), true,
       Trigger::MaxWait},
      {"deadline already past: launch now", 1, t0, at(-1), at(0), true,
       Trigger::Deadline},
  };
  for (const Case& c : cases) {
    const LaunchDecision d =
        decide(pol, c.queued, c.oldest, c.min_deadline, c.now);
    EXPECT_EQ(d.launch, c.launch) << c.label;
    if (c.launch || c.queued > 0) {
      EXPECT_EQ(d.trigger, c.trigger) << c.label;
    }
  }

  // The hold case exposes the launch point so the batcher can sleep on it:
  // max_wait binding -> oldest + max_wait; deadline binding -> deadline -
  // slack.
  const LaunchDecision hold_wait =
      decide(pol, 1, t0, kNoDeadline, at(5));
  EXPECT_EQ(hold_wait.launch_by, at(10));
  const LaunchDecision hold_deadline = decide(pol, 2, t0, at(12), at(3));
  EXPECT_EQ(hold_deadline.launch_by, at(7));
}

// ----------------------------------------------------------- RequestQueue

TEST(RequestQueue, RejectOnFullBackpressure) {
  RequestQueue q(2, /*block_when_full=*/false);
  EXPECT_EQ(q.push(make_req(1)), Admit::Accepted);
  EXPECT_EQ(q.push(make_req(2)), Admit::Accepted);
  EXPECT_EQ(q.push(make_req(3)), Admit::Rejected);
  EXPECT_EQ(q.size(), 2u);
  InferRequest r;
  ASSERT_TRUE(q.pop(r));
  EXPECT_EQ(r.id, 1u);  // FIFO
  EXPECT_EQ(q.push(make_req(4)), Admit::Accepted);
  const RequestQueue::Stats s = q.stats();
  EXPECT_EQ(s.accepted, 3u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.peak_depth, 2u);
}

TEST(RequestQueue, BlockWhenFullUnblocksOnPop) {
  RequestQueue q(1, /*block_when_full=*/true);
  EXPECT_EQ(q.push(make_req(1)), Admit::Accepted);
  std::atomic<bool> second_admitted{false};
  std::thread producer([&] {
    EXPECT_EQ(q.push(make_req(2)), Admit::Accepted);
    second_admitted.store(true);
  });
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(second_admitted.load());  // still blocked on the full queue
  InferRequest r;
  ASSERT_TRUE(q.pop(r));
  EXPECT_EQ(r.id, 1u);
  producer.join();
  EXPECT_TRUE(second_admitted.load());
  ASSERT_TRUE(q.pop(r));
  EXPECT_EQ(r.id, 2u);
}

TEST(RequestQueue, CloseDrainsConsumerAndRejectsProducers) {
  RequestQueue q(8, /*block_when_full=*/false);
  EXPECT_EQ(q.push(make_req(1)), Admit::Accepted);
  EXPECT_EQ(q.push(make_req(2)), Admit::Accepted);
  q.close();
  EXPECT_EQ(q.push(make_req(3)), Admit::Closed);
  // Admitted requests drain...
  InferRequest r;
  ASSERT_TRUE(q.pop(r));
  EXPECT_EQ(r.id, 1u);
  ASSERT_TRUE(q.pop(r));
  EXPECT_EQ(r.id, 2u);
  // ...then the consumer learns the stream ended.
  EXPECT_FALSE(q.pop(r));
  EXPECT_EQ(q.pop_wait_until(r, Clock::now() + milliseconds(5)),
            RequestQueue::PopStatus::Closed);
}

TEST(RequestQueue, CloseWakesBlockedProducer) {
  RequestQueue q(1, /*block_when_full=*/true);
  EXPECT_EQ(q.push(make_req(1)), Admit::Accepted);
  std::atomic<int> verdict{-1};
  std::thread producer(
      [&] { verdict.store(static_cast<int>(q.push(make_req(2)))); });
  std::this_thread::sleep_for(milliseconds(20));
  q.close();
  producer.join();
  EXPECT_EQ(verdict.load(), static_cast<int>(Admit::Closed));
}

TEST(RequestQueue, CloseAndCancelReturnsEveryPendingRequest) {
  RequestQueue q(8, /*block_when_full=*/false);
  ASSERT_EQ(q.push(make_req(1)), Admit::Accepted);
  ASSERT_EQ(q.push(make_req(2)), Admit::Accepted);
  ASSERT_EQ(q.push(make_req(3)), Admit::Accepted);
  const std::vector<InferRequest> orphans = q.close_and_cancel();
  ASSERT_EQ(orphans.size(), 3u);
  EXPECT_EQ(orphans[0].id, 1u);  // FIFO order preserved
  EXPECT_EQ(orphans[1].id, 2u);
  EXPECT_EQ(orphans[2].id, 3u);
  // Atomic close+drain: nothing can sit in the closed queue afterwards.
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.push(make_req(4)), Admit::Closed);
  InferRequest r;
  EXPECT_FALSE(q.pop(r));
  // Idempotent: a second call finds nothing.
  EXPECT_TRUE(q.close_and_cancel().empty());
}

TEST(RequestQueue, CloseAndCancelWakesBlockedProducer) {
  RequestQueue q(1, /*block_when_full=*/true);
  ASSERT_EQ(q.push(make_req(1)), Admit::Accepted);
  std::atomic<int> verdict{-1};
  std::thread producer(
      [&] { verdict.store(static_cast<int>(q.push(make_req(2)))); });
  std::this_thread::sleep_for(milliseconds(20));
  const std::vector<InferRequest> orphans = q.close_and_cancel();
  producer.join();
  EXPECT_EQ(orphans.size(), 1u);
  EXPECT_EQ(verdict.load(), static_cast<int>(Admit::Closed));
}

TEST(RequestQueue, PopWaitUntilTimesOut) {
  RequestQueue q(4, false);
  InferRequest r;
  const auto t0 = Clock::now();
  EXPECT_EQ(q.pop_wait_until(r, t0 + milliseconds(20)),
            RequestQueue::PopStatus::TimedOut);
  EXPECT_GE(Clock::now() - t0, milliseconds(20));
}

TEST(RequestQueue, StampsArrivalOnAdmission) {
  RequestQueue q(4, false);
  const auto before = Clock::now();
  EXPECT_EQ(q.push(make_req(7)), Admit::Accepted);
  InferRequest r;
  ASSERT_TRUE(q.pop(r));
  EXPECT_GE(r.arrival, before);
  EXPECT_LE(r.arrival, Clock::now());
  // A pre-set arrival (synthetic processes in tests) is preserved.
  const auto synthetic = Clock::time_point() + milliseconds(5);
  EXPECT_EQ(q.push(make_req(8, synthetic)), Admit::Accepted);
  ASSERT_TRUE(q.pop(r));
  EXPECT_EQ(r.arrival, synthetic);
}

// ----------------------------------------------------- MicroBatcher (live)

TEST(MicroBatcher, FullBatchesThenShutdownDrain) {
  RequestQueue q(16, false);
  for (std::uint64_t i = 0; i < 5; ++i)
    ASSERT_EQ(q.push(make_req(i)), Admit::Accepted);
  BatchPolicy pol;
  pol.max_batch = 2;
  pol.max_wait = std::chrono::seconds(10);  // only fullness/drain can launch
  MicroBatcher mb(q, pol);

  auto b1 = mb.next_batch();
  ASSERT_TRUE(b1.has_value());
  EXPECT_EQ(b1->trigger, Trigger::Full);
  ASSERT_EQ(b1->requests.size(), 2u);
  EXPECT_EQ(b1->requests[0].id, 0u);
  EXPECT_EQ(b1->requests[1].id, 1u);
  auto b2 = mb.next_batch();
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(b2->trigger, Trigger::Full);
  q.close();
  // The odd request out ships as the shutdown drain's partial batch.
  auto b3 = mb.next_batch();
  ASSERT_TRUE(b3.has_value());
  EXPECT_EQ(b3->trigger, Trigger::Drain);
  ASSERT_EQ(b3->requests.size(), 1u);
  EXPECT_EQ(b3->requests[0].id, 4u);
  EXPECT_FALSE(mb.next_batch().has_value());
}

TEST(MicroBatcher, BackloggedQueueFormsFullBatchesDespiteStaleOldest) {
  // Overload regression guard: requests that piled up while a previous
  // batch computed are all older than max_wait. The batcher must greedily
  // drain them into full batches, not launch the stale oldest alone.
  RequestQueue q(16, false);
  const auto stale = Clock::now() - std::chrono::seconds(1);
  for (std::uint64_t i = 0; i < 8; ++i)
    ASSERT_EQ(q.push(make_req(i, stale)), Admit::Accepted);
  BatchPolicy pol;
  pol.max_batch = 4;
  pol.max_wait = milliseconds(1);  // long expired for every queued request
  MicroBatcher mb(q, pol);
  for (int b = 0; b < 2; ++b) {
    auto fb = mb.next_batch();
    ASSERT_TRUE(fb.has_value());
    EXPECT_EQ(fb->requests.size(), 4u) << "batch " << b;
    EXPECT_EQ(fb->trigger, Trigger::Full) << "batch " << b;
  }
  q.close();
}

TEST(RequestQueue, TryPopNeverBlocks) {
  RequestQueue q(4, false);
  InferRequest r;
  EXPECT_EQ(q.try_pop(r), RequestQueue::PopStatus::TimedOut);  // empty
  ASSERT_EQ(q.push(make_req(1)), Admit::Accepted);
  EXPECT_EQ(q.try_pop(r), RequestQueue::PopStatus::Ok);
  EXPECT_EQ(r.id, 1u);
  q.close();
  EXPECT_EQ(q.try_pop(r), RequestQueue::PopStatus::Closed);
}

TEST(MicroBatcher, MaxWaitLaunchesPartialBatch) {
  RequestQueue q(16, false);
  BatchPolicy pol;
  pol.max_batch = 8;
  pol.max_wait = milliseconds(10);
  MicroBatcher mb(q, pol);
  const auto t0 = Clock::now();
  ASSERT_EQ(q.push(make_req(1)), Admit::Accepted);
  auto b = mb.next_batch();
  const auto elapsed = Clock::now() - t0;
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->trigger, Trigger::MaxWait);
  EXPECT_EQ(b->requests.size(), 1u);
  EXPECT_GE(elapsed, milliseconds(10));  // held the full launch window
  q.close();
}

TEST(MicroBatcher, ShouldShedTable) {
  // Pure predicate: a request is shed at dequeue iff shedding is enabled,
  // it has a real deadline, and that deadline has passed.
  const Clock::time_point t0 = Clock::time_point() + milliseconds(1000);
  BatchPolicy on;  // shed_expired defaults true
  BatchPolicy off;
  off.shed_expired = false;
  struct Case {
    const char* label;
    const BatchPolicy& pol;
    Clock::time_point deadline;
    Clock::time_point now;
    bool shed;
  };
  const Case cases[] = {
      {"no deadline never sheds", on, kNoDeadline, t0, false},
      {"future deadline holds", on, t0 + milliseconds(5), t0, false},
      {"deadline exactly now sheds", on, t0, t0, true},
      {"expired deadline sheds", on, t0 - milliseconds(1), t0, true},
      {"policy off: expired still boards", off, t0 - milliseconds(1), t0,
       false},
  };
  for (const Case& c : cases)
    EXPECT_EQ(should_shed(c.pol, c.deadline, c.now), c.shed) << c.label;
}

TEST(MicroBatcher, ShedsExpiredAtEveryDequeuePoint) {
  // Stale requests interleaved with live ones: the batcher must drop every
  // expired request via on_shed (wherever it pops — seed, greedy drain or
  // timed wait) and board only the live ones. A batch slot is never spent
  // on a request that can no longer meet its deadline.
  RequestQueue q(16, false);
  const auto now = Clock::now();
  const auto stale_arrival = now - std::chrono::seconds(1);
  const auto expired = now - milliseconds(10);
  const auto live = now + std::chrono::seconds(10);
  ASSERT_EQ(q.push(make_req(0, stale_arrival, expired)), Admit::Accepted);
  ASSERT_EQ(q.push(make_req(1, stale_arrival, live)), Admit::Accepted);
  ASSERT_EQ(q.push(make_req(2, stale_arrival, expired)), Admit::Accepted);
  ASSERT_EQ(q.push(make_req(3, stale_arrival, live)), Admit::Accepted);
  ASSERT_EQ(q.push(make_req(4, stale_arrival, expired)), Admit::Accepted);

  BatchPolicy pol;
  pol.max_batch = 2;
  pol.max_wait = milliseconds(1);
  MicroBatcher mb(q, pol);
  std::vector<std::uint64_t> shed;
  mb.on_shed = [&](InferRequest&& r) { shed.push_back(r.id); };

  auto fb = mb.next_batch();
  ASSERT_TRUE(fb.has_value());
  ASSERT_EQ(fb->requests.size(), 2u);
  EXPECT_EQ(fb->requests[0].id, 1u);
  EXPECT_EQ(fb->requests[1].id, 3u);
  q.close();
  auto drain = mb.next_batch();
  EXPECT_FALSE(drain.has_value());  // nothing left but shed requests
  EXPECT_EQ(shed, (std::vector<std::uint64_t>{0, 2, 4}));
}

TEST(MicroBatcher, DeadlineCutsTheWaitShort) {
  RequestQueue q(16, false);
  BatchPolicy pol;
  pol.max_batch = 8;
  pol.max_wait = milliseconds(500);
  MicroBatcher mb(q, pol);
  const auto t0 = Clock::now();
  ASSERT_EQ(q.push(make_req(1, {}, t0 + milliseconds(20))), Admit::Accepted);
  auto b = mb.next_batch();
  const auto elapsed = Clock::now() - t0;
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->trigger, Trigger::Deadline);
  EXPECT_LT(elapsed, milliseconds(400));  // did not wait out max_wait
  q.close();
}

// ------------------------------------------------------------------ Server

std::unique_ptr<dnn::Network> small_net() { return dnn::build_vgg16(32, 4); }

TEST(Server, OutputsBitIdenticalToSynchronousRun) {
  auto net = small_net();
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  runtime::SchedulerConfig cfg;
  cfg.threads = 2;
  runtime::BatchScheduler sched(engine, cfg);

  constexpr int kRequests = 10;
  ServerConfig scfg;
  scfg.policy.max_batch = 4;
  scfg.policy.max_wait = milliseconds(1);
  scfg.queue_capacity = kRequests;
  scfg.block_when_full = true;
  Server server(sched, *net, scfg);
  server.start();
  for (int r = 0; r < kRequests; ++r) {
    dnn::Tensor in(1, net->in_c(), net->in_h(), net->in_w());
    in.randomize_item(0, 777 + static_cast<std::uint64_t>(r));
    ASSERT_EQ(server.submit(static_cast<std::uint64_t>(r), std::move(in)),
              Admit::Accepted);
  }
  server.stop();
  const std::vector<Completion> done = server.drain_completions();
  ASSERT_EQ(done.size(), static_cast<std::size_t>(kRequests));

  // Reference: the same request set through the synchronous run() path as
  // one batch. Per-item kernels make each request's output independent of
  // batch grouping, so every async result must match bit for bit.
  dnn::Tensor ref_in(kRequests, net->in_c(), net->in_h(), net->in_w());
  // Requests were filled from stream 0 of seed 777+r; rebuild those exact
  // bytes per item (randomize_item(r, seed) would use stream r instead).
  for (int r = 0; r < kRequests; ++r) {
    dnn::Tensor one(1, net->in_c(), net->in_h(), net->in_w());
    one.randomize_item(0, 777 + static_cast<std::uint64_t>(r));
    std::memcpy(ref_in.item_data(r), one.data(),
                one.size() * sizeof(float));
  }
  const dnn::Tensor& ref_out = sched.run(*net, ref_in);

  std::set<std::uint64_t> seen;
  for (const Completion& c : done) {
    const auto id = c.trace.id;
    ASSERT_LT(id, static_cast<std::uint64_t>(kRequests));
    EXPECT_TRUE(seen.insert(id).second) << "duplicate completion " << id;
    ASSERT_EQ(c.output.size(), ref_out.item_size());
    EXPECT_EQ(std::memcmp(c.output.data(),
                          ref_out.item_data(static_cast<int>(id)),
                          c.output.size() * sizeof(float)),
              0)
        << "request " << id;
    EXPECT_GE(c.trace.queue_ms, 0.0);
    EXPECT_GT(c.trace.compute_ms, 0.0);
    EXPECT_GE(c.trace.total_ms, c.trace.compute_ms);
    EXPECT_GE(c.trace.batch_items, 1);
    EXPECT_LE(c.trace.batch_items, scfg.policy.max_batch);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GE(stats.batches, 3u);  // 10 requests, batches of <= 4
}

TEST(Server, ConcurrentSubmitCompletesEveryRequest) {
  auto net = small_net();
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  runtime::SchedulerConfig cfg;
  cfg.threads = 2;
  runtime::BatchScheduler sched(engine, cfg);

  ServerConfig scfg;
  scfg.policy.max_batch = 3;
  scfg.policy.max_wait = milliseconds(1);
  scfg.queue_capacity = 4;  // small: exercises producer backpressure
  scfg.block_when_full = true;
  Server server(sched, *net, scfg);
  server.start();

  constexpr int kThreads = 4, kPerThread = 6;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        dnn::Tensor in(1, net->in_c(), net->in_h(), net->in_w());
        const auto id = static_cast<std::uint64_t>(t * 100 + i);
        in.randomize_item(0, id);
        ASSERT_EQ(server.submit(id, std::move(in)), Admit::Accepted);
      }
    });
  }
  for (auto& t : producers) t.join();
  server.stop();

  const std::vector<Completion> done = server.drain_completions();
  ASSERT_EQ(done.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::set<std::uint64_t> seen;
  for (const Completion& c : done)
    EXPECT_TRUE(seen.insert(c.trace.id).second)
        << "duplicate completion " << c.trace.id;
  EXPECT_EQ(server.stats().completed,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Server, RejectsWhenQueueFullBeforeStart) {
  auto net = small_net();
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  runtime::BatchScheduler sched(engine, runtime::SchedulerConfig{});

  ServerConfig scfg;
  scfg.policy.max_batch = 2;
  scfg.policy.max_wait = milliseconds(0);
  scfg.queue_capacity = 2;
  scfg.block_when_full = false;
  Server server(sched, *net, scfg);
  // Not started: nothing consumes, so the bounded queue fills
  // deterministically and the third submit sheds load.
  const auto mk = [&](std::uint64_t id) {
    dnn::Tensor in(1, net->in_c(), net->in_h(), net->in_w());
    in.randomize_item(0, id);
    return in;
  };
  EXPECT_EQ(server.submit(0, mk(0)), Admit::Accepted);
  EXPECT_EQ(server.submit(1, mk(1)), Admit::Accepted);
  EXPECT_EQ(server.submit(2, mk(2)), Admit::Rejected);
  server.start();
  server.stop();  // drains the two admitted requests
  EXPECT_EQ(server.drain_completions().size(), 2u);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.rejected, 1u);
}

TEST(Server, StopBeforeStartCancelsPendingWithTypedOutcome) {
  // Regression: a server torn down before start() used to strand admitted
  // requests in the closed queue — they vanished without any completion.
  // stop() must resolve each with a typed Cancelled outcome.
  auto net = small_net();
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  runtime::BatchScheduler sched(engine, runtime::SchedulerConfig{});

  ServerConfig scfg;
  scfg.queue_capacity = 4;
  Server server(sched, *net, scfg);
  const auto mk = [&](std::uint64_t id) {
    dnn::Tensor in(1, net->in_c(), net->in_h(), net->in_w());
    in.randomize_item(0, id);
    return in;
  };
  EXPECT_EQ(server.submit(0, mk(0)), Admit::Accepted);
  EXPECT_EQ(server.submit(1, mk(1)), Admit::Accepted);
  server.stop();  // never started
  const std::vector<Completion> done = server.drain_completions();
  ASSERT_EQ(done.size(), 2u);
  for (const Completion& c : done) {
    EXPECT_EQ(c.trace.outcome, Outcome::Cancelled);
    EXPECT_EQ(c.output.size(), 0u);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.outcomes[static_cast<std::size_t>(Outcome::Cancelled)], 2u);
  // Admission is closed after the cancel drain.
  EXPECT_EQ(server.submit(2, mk(2)), Admit::Closed);
}

TEST(Server, ExpiredDeadlinesAreShedWithTypedOutcome) {
  // Default policy (shed_expired): a request whose deadline already passed
  // is dropped at dequeue — it never occupies a batch slot, but it still
  // resolves with a typed ShedDeadline completion.
  auto net = small_net();
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  runtime::BatchScheduler sched(engine, runtime::SchedulerConfig{});

  ServerConfig scfg;
  scfg.policy.max_batch = 1;  // launch immediately
  scfg.queue_capacity = 8;
  scfg.block_when_full = true;
  Server server(sched, *net, scfg);
  server.start();
  for (std::uint64_t r = 0; r < 3; ++r) {
    dnn::Tensor in(1, net->in_c(), net->in_h(), net->in_w());
    in.randomize_item(0, r);
    ASSERT_EQ(server.submit(r, std::move(in),
                            Clock::now() - milliseconds(1)),
              Admit::Accepted);
  }
  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.outcomes[static_cast<std::size_t>(Outcome::ShedDeadline)],
            3u);
  EXPECT_EQ(stats.deadline_misses, 0u);  // shed, not served late
  EXPECT_EQ(stats.batches, 0u);          // no batch ever formed
  const std::vector<Completion> done = server.drain_completions();
  ASSERT_EQ(done.size(), 3u);
  for (const Completion& c : done) {
    EXPECT_EQ(c.trace.outcome, Outcome::ShedDeadline);
    EXPECT_FALSE(c.trace.deadline_met);
    EXPECT_EQ(c.output.size(), 0u);  // never computed
  }
}

TEST(Server, DeadlineMissesAreCounted) {
  // shed_expired off restores serve-anyway semantics: expired requests ride
  // a batch and complete Ok, counted as deadline misses.
  auto net = small_net();
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  runtime::BatchScheduler sched(engine, runtime::SchedulerConfig{});

  ServerConfig scfg;
  scfg.policy.max_batch = 1;  // launch immediately
  scfg.policy.shed_expired = false;
  scfg.queue_capacity = 8;
  scfg.block_when_full = true;
  Server server(sched, *net, scfg);
  server.start();
  for (std::uint64_t r = 0; r < 3; ++r) {
    dnn::Tensor in(1, net->in_c(), net->in_h(), net->in_w());
    in.randomize_item(0, r);
    // A deadline that already passed cannot be met: every request misses.
    ASSERT_EQ(server.submit(r, std::move(in),
                            Clock::now() - milliseconds(1)),
              Admit::Accepted);
  }
  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.deadline_misses, 3u);
  EXPECT_EQ(stats.outcomes[static_cast<std::size_t>(Outcome::Ok)], 3u);
  for (const Completion& c : server.drain_completions()) {
    EXPECT_EQ(c.trace.outcome, Outcome::Ok);
    EXPECT_FALSE(c.trace.deadline_met);
  }
}

TEST(Server, RejectsWrongShapeSynchronously) {
  auto net = small_net();
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  runtime::BatchScheduler sched(engine, runtime::SchedulerConfig{});
  Server server(sched, *net, ServerConfig{});
  dnn::Tensor wrong(1, net->in_c(), net->in_h() + 1, net->in_w());
  EXPECT_THROW((void)server.submit(1, std::move(wrong)), InvalidArgument);
}

// ------------------------------------------------------- online re-planning

/// Analytic batch-1 plan over the SVE machine model (the kernels still run
/// on the host; the plan only routes dispatch).
core::BackendPlan analytic_plan(dnn::Network& net, core::CostModel& model,
                                int batch) {
  return core::select_per_layer(net, model.machine(), 7, batch, {},
                                core::CostSource::Analytic, &model);
}

core::CostModel make_model() {
  const sim::MachineConfig m = sim::sve_gem5();
  gemm::Opt6Config o6;
  o6.blocks = gemm::tune_block_sizes(m);
  return core::CostModel(m, o6);
}

// The acceptance pin: a plan swap applied MID-STREAM — while submitted
// batches are in flight — must not change a single output bit. The swapped
// plan is the replanner's own re-pricing at a different amortization point
// (bit-identical pinning), so every batch, before or after the swap, must
// equal the fixed-plan reference.
TEST(BatchScheduler, InstallPlanMidStreamKeepsOutputsBitIdentical) {
  auto net = small_net();
  core::CostModel model = make_model();
  core::BackendPlan plan_b1 = analytic_plan(*net, model, 1);
  core::BackendPlan plan_b8 = core::replan_for_batch(*net, plan_b1, model, 8);
  ASSERT_EQ(plan_b8.priced_batch, 8);

  core::ConvolutionEngine engine(plan_b1);
  runtime::SchedulerConfig cfg;
  cfg.threads = 2;
  runtime::BatchScheduler sched(engine, cfg);

  constexpr int kBatches = 6, kItems = 3;
  const auto make_batch = [&](int b) {
    dnn::Tensor in(kItems, net->in_c(), net->in_h(), net->in_w());
    in.randomize_batch(500 + static_cast<std::uint64_t>(b), 0.0f, 1.0f);
    return in;
  };
  // Reference outputs under the untouched base plan.
  std::vector<std::vector<float>> ref;
  for (int b = 0; b < kBatches; ++b) {
    const dnn::Tensor& out = sched.run(*net, make_batch(b));
    ref.emplace_back(out.data(), out.data() + out.size());
  }

  // Same batches through the async path with the swap landing mid-stream.
  // The slot ring holds two batches, so keep one ticket outstanding: when
  // install_plan runs, the just-submitted batch is queued or in flight and
  // the swap must quiesce around it.
  const auto check = [&](const runtime::BatchTicket& t, int b) {
    const runtime::BatchResult res = sched.wait(t);
    ASSERT_EQ(res.output.size(), ref[static_cast<std::size_t>(b)].size());
    EXPECT_EQ(std::memcmp(res.output.data(),
                          ref[static_cast<std::size_t>(b)].data(),
                          res.output.size() * sizeof(float)),
              0)
        << "batch " << b << " diverged across the plan swap";
  };
  std::vector<runtime::BatchTicket> tickets;
  for (int b = 0; b < kBatches; ++b) {
    tickets.push_back(sched.submit(*net, make_batch(b)));
    if (b == kBatches / 2) sched.install_plan(plan_b8);
    if (b >= 1) check(tickets[static_cast<std::size_t>(b - 1)], b - 1);
  }
  check(tickets.back(), kBatches - 1);
}

// Replanner end to end, deterministically driven: a sustained batch-8
// regime (observed directly, the same call the server's completion loop
// makes) must trigger one analytic re-plan and one swap, re-pricing the
// live plan for the new amortization point — and the scheduler must keep
// producing bit-identical outputs afterwards.
TEST(Replanner, RegimeShiftSwapsPlanAndKeepsBitsStable) {
  auto net = small_net();
  core::CostModel model = make_model();
  core::BackendPlan base = analytic_plan(*net, model, 1);
  ASSERT_EQ(base.priced_batch, 1);

  core::ConvolutionEngine engine(base);
  runtime::SchedulerConfig cfg;
  cfg.threads = 2;
  runtime::BatchScheduler sched(engine, cfg);

  dnn::Tensor in(4, net->in_c(), net->in_h(), net->in_w());
  in.randomize_batch(321, 0.0f, 1.0f);
  const dnn::Tensor& out0 = sched.run(*net, in);
  const std::vector<float> ref(out0.data(), out0.data() + out0.size());

  ReplannerConfig rcfg;
  rcfg.max_batch = 8;
  rcfg.window = 4;
  rcfg.hysteresis = 1.5;
  rcfg.min_batches = 4;
  rcfg.cooldown_batches = 4;
  Replanner rp(sched, *net, model, base, rcfg);
  rp.start();
  for (int i = 0; i < 6; ++i) rp.observe(8, 8);

  // The worker plans off-thread in microseconds; bound the wait generously.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rp.stats().plans_recomputed == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(milliseconds(1));
  const ReplanStats st = rp.stats();
  ASSERT_GE(st.plans_recomputed, 1u);
  // A swap only happens when the re-priced plan routes differently; on this
  // net the batch-8 re-rank may keep the same dispatch, in which case the
  // replanner rightly skips the quiesce. Either way the plan is re-priced.
  EXPECT_LE(st.swaps_applied, st.plans_recomputed);
  EXPECT_GT(st.last_plan_compute_us, 0u);
  EXPECT_EQ(st.current_priced_batch, 8);
  EXPECT_EQ(rp.current_plan().priced_batch, 8);
  rp.stop();

  // Bit-identical pinning: outputs after the swap equal the base plan's.
  const dnn::Tensor& out1 = sched.run(*net, in);
  ASSERT_EQ(out1.size(), ref.size());
  EXPECT_EQ(std::memcmp(out1.data(), ref.data(), ref.size() * sizeof(float)),
            0);

  // Per-backend win counts cover every entry of the live plan.
  std::uint64_t wins = 0;
  for (const auto& w : st.wins) wins += w;
  EXPECT_EQ(wins, rp.current_plan().entries.size());
}

// The server merges the replanner's counters into its own stats and feeds
// it the observed traffic; a burst of requests against a batch-1-priced
// plan makes the regime estimate climb, and whether or not the swap lands
// within this short stream, outputs stay bit-identical to the synchronous
// reference (the pinning contract, end to end).
TEST(Server, ReplannerWiredIntoServingLoop) {
  auto net = small_net();
  core::CostModel model = make_model();
  core::BackendPlan base = analytic_plan(*net, model, 1);

  core::ConvolutionEngine engine(base);
  runtime::SchedulerConfig cfg;
  cfg.threads = 2;
  runtime::BatchScheduler sched(engine, cfg);

  ReplannerConfig rcfg;
  rcfg.max_batch = 8;
  rcfg.window = 4;
  rcfg.hysteresis = 1.5;
  rcfg.min_batches = 2;
  rcfg.cooldown_batches = 2;
  Replanner rp(sched, *net, model, base, rcfg);
  rp.start();

  constexpr int kRequests = 24;
  ServerConfig scfg;
  scfg.policy.max_batch = 8;
  scfg.policy.max_wait = milliseconds(1);
  scfg.queue_capacity = kRequests;
  scfg.block_when_full = true;
  scfg.replanner = &rp;
  Server server(sched, *net, scfg);
  server.start();
  for (int r = 0; r < kRequests; ++r) {
    dnn::Tensor in(1, net->in_c(), net->in_h(), net->in_w());
    in.randomize_item(0, 900 + static_cast<std::uint64_t>(r));
    ASSERT_EQ(server.submit(static_cast<std::uint64_t>(r), std::move(in)),
              Admit::Accepted);
  }
  const ServerStats mid = server.stats();  // merged while running: no crash
  EXPECT_EQ(mid.plan_priced_batch, rp.stats().current_priced_batch);
  server.stop();
  rp.stop();

  const std::vector<Completion> done = server.drain_completions();
  ASSERT_EQ(done.size(), static_cast<std::size_t>(kRequests));
  dnn::Tensor ref_in(kRequests, net->in_c(), net->in_h(), net->in_w());
  for (int r = 0; r < kRequests; ++r) {
    dnn::Tensor one(1, net->in_c(), net->in_h(), net->in_w());
    one.randomize_item(0, 900 + static_cast<std::uint64_t>(r));
    std::memcpy(ref_in.item_data(r), one.data(), one.size() * sizeof(float));
  }
  const dnn::Tensor& ref_out = sched.run(*net, ref_in);
  for (const Completion& c : done) {
    EXPECT_EQ(std::memcmp(c.output.data(),
                          ref_out.item_data(static_cast<int>(c.trace.id)),
                          c.output.size() * sizeof(float)),
              0)
        << "request " << c.trace.id;
  }

  // The replanner's counters surface through Server::stats().
  const ServerStats stats = server.stats();
  const ReplanStats rs = rp.stats();
  EXPECT_EQ(stats.plans_recomputed, rs.plans_recomputed);
  EXPECT_EQ(stats.plan_swaps_applied, rs.swaps_applied);
  EXPECT_EQ(stats.plan_priced_batch, rs.current_priced_batch);
  EXPECT_EQ(stats.backend_wins, rs.wins);
}

// ------------------------------------------------------- OverloadGovernor

// Synthetic-time table tests: the whole state machine takes explicit `now`
// arguments, so no real clock or sleeping is involved.

TEST(OverloadGovernor, CoDelEntersAndExitsDropping) {
  GovernorConfig g;
  g.target_sojourn_ms = 5.0;
  g.interval_ms = 100.0;
  OverloadGovernor gov(g);
  const Clock::time_point t0 = Clock::time_point() + milliseconds(1000);
  const auto at = [&](int ms) { return t0 + milliseconds(ms); };
  const auto s = [](double ms) { return ms * 1e-3; };

  // Idle governor admits freely.
  EXPECT_EQ(gov.admit(at(0), 0, kNoDeadline), AdmitVerdict::Admit);

  // Sojourn above target, but not yet for a full interval: still admitting.
  gov.observe_batch(at(0), s(10), 4, 0.0);
  EXPECT_EQ(gov.admit(at(50), 10, kNoDeadline), AdmitVerdict::Admit);
  gov.observe_batch(at(99), s(10), 4, 0.0);
  EXPECT_EQ(gov.admit(at(99), 10, kNoDeadline), AdmitVerdict::Admit);

  // A full interval of continuously-above-target sojourn: dropping engages
  // and the first rejection fires immediately.
  gov.observe_batch(at(101), s(10), 4, 0.0);
  EXPECT_EQ(gov.admit(at(101), 10, kNoDeadline),
            AdmitVerdict::RejectOverload);
  // The control law spaces the next rejection interval/sqrt(2) later;
  // arrivals before that point pass.
  EXPECT_EQ(gov.admit(at(102), 10, kNoDeadline), AdmitVerdict::Admit);

  // One below-target reading proves the standing queue dissolved: exit.
  gov.observe_batch(at(150), s(1), 4, 0.0);
  EXPECT_EQ(gov.admit(at(300), 10, kNoDeadline), AdmitVerdict::Admit);

  const GovernorStats st = gov.stats();
  EXPECT_EQ(st.rejected_overload, 1u);
  EXPECT_EQ(st.drop_intervals, 1u);
  EXPECT_EQ(st.admitted, 5u);
}

TEST(OverloadGovernor, EmptyQueueExitsDroppingAtAdmission) {
  // Wedge regression: under heavy rejection pressure drop_count_ grows
  // until the control law rejects essentially every arrival — and with
  // nothing admitted, no batch ever completes to deliver the below-target
  // reading that exits dropping. An empty queue at an admission point is
  // the admission-side proof the standing queue dissolved.
  GovernorConfig g;
  g.target_sojourn_ms = 5.0;
  g.interval_ms = 100.0;
  OverloadGovernor gov(g);
  const Clock::time_point t0 = Clock::time_point() + milliseconds(1000);
  const auto at = [&](int ms) { return t0 + milliseconds(ms); };
  gov.observe_batch(at(0), 0.010, 4, 0.0);
  gov.observe_batch(at(101), 0.010, 4, 0.0);  // dropping engages
  // Saturate the control law: many rejections shrink the drop spacing.
  for (int k = 0; k < 100; ++k)
    (void)gov.admit(at(200 + k), 10, kNoDeadline);
  EXPECT_EQ(gov.admit(at(400), 10, kNoDeadline),
            AdmitVerdict::RejectOverload);
  // The queue drained: the next arrival must be admitted, not rejected.
  EXPECT_EQ(gov.admit(at(500), 0, kNoDeadline), AdmitVerdict::Admit);
  EXPECT_EQ(gov.admit(at(501), 10, kNoDeadline), AdmitVerdict::Admit);
}

TEST(OverloadGovernor, BriefSpikesNeverTriggerDropping) {
  // Above-target readings interrupted by a below-target one restart the
  // interval clock: batching jitter does not count as overload.
  GovernorConfig g;
  g.target_sojourn_ms = 5.0;
  g.interval_ms = 100.0;
  OverloadGovernor gov(g);
  const Clock::time_point t0 = Clock::time_point() + milliseconds(1000);
  const auto at = [&](int ms) { return t0 + milliseconds(ms); };
  for (int k = 0; k < 10; ++k) {
    gov.observe_batch(at(k * 60), 0.010, 4, 0.0);      // above target
    gov.observe_batch(at(k * 60 + 30), 0.001, 4, 0.0);  // dip below
  }
  EXPECT_EQ(gov.admit(at(700), 10, kNoDeadline), AdmitVerdict::Admit);
  EXPECT_EQ(gov.stats().drop_intervals, 0u);
}

TEST(OverloadGovernor, DoomedDeadlinesRejectedUpFront) {
  GovernorConfig g;
  g.est_item_seconds = 0.010;  // 10 ms per item, as if priced via CostModel
  g.doom_headroom = 1.0;
  OverloadGovernor gov(g);
  const Clock::time_point t0 = Clock::time_point() + milliseconds(1000);
  // 9 queued ahead -> earliest finish is 10 services = 100 ms out. A 50 ms
  // deadline is unreachable; a 200 ms one is fine; no deadline never dooms.
  EXPECT_EQ(gov.admit(t0, 9, t0 + milliseconds(50)),
            AdmitVerdict::RejectDoomed);
  EXPECT_EQ(gov.admit(t0, 9, t0 + milliseconds(200)), AdmitVerdict::Admit);
  EXPECT_EQ(gov.admit(t0, 1000, kNoDeadline), AdmitVerdict::Admit);
  EXPECT_EQ(gov.stats().rejected_doomed, 1u);

  // The EWMA folds observed per-item compute into the estimate.
  gov.observe_batch(t0, 0.0, 4, 0.080);  // 20 ms/item observed
  const double est = gov.stats().est_item_seconds;
  EXPECT_GT(est, 0.010);
  EXPECT_LT(est, 0.020);
}

TEST(OverloadGovernor, LadderDegradesUnderSustainedDropAndRecovers) {
  GovernorConfig g;
  g.target_sojourn_ms = 5.0;
  g.interval_ms = 50.0;
  g.max_tier = 2;
  g.degrade_after_ms = 100.0;
  g.recover_after_ms = 100.0;
  g.cooldown_ms = 1.0;
  std::vector<int> moves;
  OverloadGovernor gov(g, [&](int tier) { moves.push_back(tier); });
  const Clock::time_point t0 = Clock::time_point() + milliseconds(1000);
  const auto at = [&](int ms) { return t0 + milliseconds(ms); };

  gov.observe_batch(at(0), 0.010, 4, 0.0);    // above; interval clock starts
  gov.observe_batch(at(51), 0.010, 4, 0.0);   // dropping; overload clock starts
  gov.observe_batch(at(152), 0.010, 4, 0.0);  // 101 ms of drop -> tier 1
  gov.observe_batch(at(253), 0.010, 4, 0.0);  // another window -> tier 2
  gov.observe_batch(at(300), 0.001, 4, 0.0);  // calm; recovery clock starts
  gov.observe_batch(at(401), 0.001, 4, 0.0);  // 101 ms calm -> tier 1
  gov.observe_batch(at(502), 0.001, 4, 0.0);  // -> tier 0

  EXPECT_EQ(moves, (std::vector<int>{1, 2, 1, 0}));
  const GovernorStats st = gov.stats();
  EXPECT_EQ(st.tier, 0);
  EXPECT_EQ(st.tier_degrades, 2u);
  EXPECT_EQ(st.tier_recoveries, 2u);
}

TEST(OverloadGovernor, SustainedDoomedRejectionDegradesWithoutBatches) {
  // When the capacity estimate rejects every deadline-carrying arrival as
  // doomed, no batch ever completes, so the CoDel dropping state starves.
  // The ladder must still engage off the unbroken rejection streak — a
  // cheaper tier is what would make those deadlines reachable again.
  GovernorConfig g;
  g.est_item_seconds = 1.0;  // learned slow service: 1 s/item
  g.doom_headroom = 1.0;
  g.max_tier = 2;
  g.degrade_after_ms = 100.0;
  g.recover_after_ms = 100.0;
  g.cooldown_ms = 1.0;
  std::vector<int> moves;
  OverloadGovernor gov(g, [&](int tier) { moves.push_back(tier); });
  const Clock::time_point t0 = Clock::time_point() + milliseconds(1000);
  const auto at = [&](int ms) { return t0 + milliseconds(ms); };

  // A 50 ms deadline with 4 queued ahead is hopeless at 1 s/item: every
  // arrival is RejectDoomed, and after 100 ms of unbroken streak the ladder
  // steps down (no observe_batch call ever happens).
  for (int ms = 0; ms <= 260; ms += 20) {
    EXPECT_EQ(gov.admit(at(ms), 4, at(ms + 50)), AdmitVerdict::RejectDoomed);
  }
  EXPECT_EQ(moves, (std::vector<int>{1, 2}));
  EXPECT_EQ(gov.stats().tier_degrades, 2u);

  // An admitted request breaks the streak; calm completions then walk the
  // ladder back up.
  EXPECT_EQ(gov.admit(at(300), 0, kNoDeadline), AdmitVerdict::Admit);
  gov.observe_batch(at(301), 0.001, 4, 0.0);  // calm clock starts
  gov.observe_batch(at(402), 0.001, 4, 0.0);  // -> tier 1
  gov.observe_batch(at(503), 0.001, 4, 0.0);  // -> tier 0
  EXPECT_EQ(moves, (std::vector<int>{1, 2, 1, 0}));
  EXPECT_EQ(gov.stats().tier_recoveries, 2u);
}

TEST(OverloadGovernor, CostModelSeedIsPlausible) {
  auto net = small_net();
  core::CostModel model = make_model();
  const core::BackendPlan plan = analytic_plan(*net, model, 1);
  const double est = estimate_item_seconds(plan, model.machine().freq_ghz);
  EXPECT_GT(est, 0.0);
  EXPECT_LT(est, 10.0);  // a single small-CNN item is far under 10 s
}

// ---------------------------------------------- degradation ladder (live)

TEST(Replanner, TierSwapInstallsCheaperPlanAndRecoversBitIdentical) {
  auto net = small_net();
  core::CostModel model = make_model();
  core::BackendPlan base = analytic_plan(*net, model, 1);

  core::ConvolutionEngine engine(base);
  runtime::SchedulerConfig cfg;
  cfg.threads = 2;
  runtime::BatchScheduler sched(engine, cfg);

  dnn::Tensor in(4, net->in_c(), net->in_h(), net->in_w());
  in.randomize_batch(654, 0.0f, 1.0f);
  const dnn::Tensor& out0 = sched.run(*net, in);
  const std::vector<float> ref(out0.data(), out0.data() + out0.size());

  ReplannerConfig rcfg;
  Replanner rp(sched, *net, model, base, rcfg);
  rp.set_tiers(default_degradation_tiers(base));
  rp.start();

  const auto wait_tier = [&](int tier) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (rp.current_tier() != tier &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(milliseconds(1));
    return rp.current_tier() == tier;
  };

  rp.request_tier(1);
  ASSERT_TRUE(wait_tier(1)) << "tier-1 swap never landed";
  // Within a tier the plan is pinned: repeated runs are bit-identical.
  const dnn::Tensor& a = sched.run(*net, in);
  const std::vector<float> tier1(a.data(), a.data() + a.size());
  const dnn::Tensor& b = sched.run(*net, in);
  ASSERT_EQ(tier1.size(), b.size());
  EXPECT_EQ(
      std::memcmp(tier1.data(), b.data(), tier1.size() * sizeof(float)), 0);

  // Climb back: tier 0 restores the exact base plan, bit for bit.
  rp.request_tier(0);
  ASSERT_TRUE(wait_tier(0)) << "recovery to tier 0 never landed";
  const dnn::Tensor& c = sched.run(*net, in);
  ASSERT_EQ(c.size(), ref.size());
  EXPECT_EQ(std::memcmp(c.data(), ref.data(), ref.size() * sizeof(float)), 0);

  const ReplanStats st = rp.stats();
  EXPECT_EQ(st.current_tier, 0);
  EXPECT_GE(st.tier_swaps, 2u);
  rp.stop();
}

// --------------------------------------------------- chaos acceptance gate

// The ISSUE's acceptance scenario, end to end: a 3x overload burst with
// deterministic injected faults, a governor in front of the queue and the
// degradation ladder wired to the replanner. Every submitted request must
// resolve with exactly one typed outcome (nothing vanishes, nothing
// deadlocks), the ladder must both degrade and recover, and the server must
// shut down cleanly.
TEST(Server, ChaosOverloadEveryRequestResolvesTyped) {
  auto net = small_net();
  core::CostModel model = make_model();
  core::BackendPlan base = analytic_plan(*net, model, 1);

  core::ConvolutionEngine engine(base);
  runtime::FaultInjector injector(runtime::FaultPlan::chaos(42));
  runtime::SchedulerConfig cfg;
  cfg.threads = 2;
  cfg.fault_injector = &injector;
  // Far above any injected stall AND any legit batch time under TSan's
  // ~10x slowdown: the wedges==0 assertion below means "the watchdog never
  // false-positives on slow-but-live batches"; actual wedge detection is
  // pinned by the Watchdog suite.
  cfg.watchdog_timeout_s = 60.0;
  runtime::BatchScheduler sched(engine, cfg);

  ReplannerConfig rcfg;
  Replanner rp(sched, *net, model, base, rcfg);
  rp.set_tiers(default_degradation_tiers(base));
  rp.start();

  GovernorConfig gcfg;
  gcfg.target_sojourn_ms = 10.0;
  gcfg.interval_ms = 30.0;
  gcfg.est_item_seconds =
      estimate_item_seconds(base, model.machine().freq_ghz);
  gcfg.max_tier = 2;
  gcfg.degrade_after_ms = 60.0;
  gcfg.recover_after_ms = 60.0;
  gcfg.cooldown_ms = 20.0;
  OverloadGovernor governor(gcfg,
                            [&](int tier) { rp.request_tier(tier); });

  std::array<std::atomic<std::uint64_t>, kOutcomeCount> delivered{};
  ServerConfig scfg;
  scfg.policy.max_batch = 4;
  scfg.policy.max_wait = milliseconds(1);
  scfg.queue_capacity = 64;
  scfg.block_when_full = false;  // overload sheds, never blocks the client
  scfg.replanner = &rp;
  scfg.governor = &governor;
  scfg.on_complete = [&](Completion&& c) {
    delivered[static_cast<std::size_t>(c.trace.outcome)].fetch_add(1);
  };
  Server server(sched, *net, scfg);
  server.start();

  std::uint64_t submitted = 0, accepted = 0, rejected = 0;
  const auto submit_one = [&](Clock::time_point deadline) {
    dnn::Tensor in(1, net->in_c(), net->in_h(), net->in_w());
    in.randomize_item(0, submitted);
    const Admit a = server.submit(submitted++, std::move(in), deadline);
    if (a == Admit::Accepted) {
      ++accepted;
    } else {
      ASSERT_TRUE(a == Admit::Rejected || a == Admit::RejectedOverload);
      ++rejected;
    }
  };

  // Phase 1 — overload: pump bursts well past capacity until the ladder
  // steps down (generous wall-clock bound; sanitizer builds run slow).
  const auto degrade_by =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (server.stats().tier_degrades == 0 &&
         std::chrono::steady_clock::now() < degrade_by) {
    for (int i = 0; i < 16; ++i)
      submit_one(Clock::now() + milliseconds(250));
    std::this_thread::sleep_for(milliseconds(2));
  }
  EXPECT_GE(server.stats().tier_degrades, 1u) << "ladder never degraded";

  // Phase 2 — calm: a trickle lets the queue drain, sojourn falls under
  // target and the ladder climbs back.
  const auto recover_by =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (server.stats().tier_recoveries == 0 &&
         std::chrono::steady_clock::now() < recover_by) {
    submit_one(kNoDeadline);
    std::this_thread::sleep_for(milliseconds(25));
  }
  EXPECT_GE(server.stats().tier_recoveries, 1u) << "ladder never recovered";

  server.stop();
  rp.stop();

  // The chaos gate: every submitted request resolved with exactly one typed
  // outcome — completions for everything admitted, rejections for the rest.
  std::uint64_t completions = 0;
  for (const auto& d : delivered) completions += d.load();
  EXPECT_EQ(completions, accepted);
  const ServerStats st = server.stats();
  EXPECT_EQ(st.completed, accepted);
  std::uint64_t resolved = 0;
  for (const auto& o : st.outcomes) resolved += o;
  EXPECT_EQ(resolved, submitted);
  EXPECT_EQ(st.outcomes[static_cast<std::size_t>(Outcome::RejectedOverload)],
            rejected);
  // Faults really were injected, and no batch wedged past the watchdog.
  const runtime::FaultInjector::Stats fs = injector.stats();
  EXPECT_GT(fs.task_stalls + fs.worker_slows + fs.item_failures, 0u);
  EXPECT_EQ(st.watchdog_wedges, 0u);
}

}  // namespace
}  // namespace vlacnn::serve

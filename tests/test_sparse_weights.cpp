// Structured-sparsity weight residency: block-pruned packed images and the
// skip-aware sparse Gemm6 backends consuming them. Pins the PR's
// contracts — the magnitude prune is deterministic and keeps exactly the
// budgeted block count, the sparse image layout round-trips every kept
// block (and only the kept blocks) through bitmap + offset + compacted
// values, sparse conv outputs are BIT-IDENTICAL to the dense kernel over
// apply_block_mask-pruned weights (fp32 and bf16 alike, batch-fused ==
// per-item), execution falls back to the dense fp32 sibling when the
// sparse image is not resident (residency-or-nothing), mixed-format cache
// entries of one layer keep per-format byte accounting honest across a
// budget shrink, concurrent readers of sparse images are race-free, the
// selector admits sparse candidates only under an explicit accuracy
// budget, and its shape memo never hands a dense cycle table to a sparse
// variant of the same shape.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/conv_engine.hpp"
#include "core/selector.hpp"
#include "dnn/models.hpp"
#include "gemm/packed_weight_cache.hpp"
#include "runtime/batch_scheduler.hpp"
#include "sim/machine_config.hpp"
#include "test_util.hpp"

namespace vlacnn::gemm {
namespace {

/// True when linear slot `idx` of `g` covers matrix data (not a padding
/// chunk of a short last panel).
bool flat_index_valid(const SparseGrid& g, std::size_t idx) {
  const int cb = static_cast<int>(idx % static_cast<std::size_t>(g.chunk_cap));
  const int pk = static_cast<int>(
      idx / (static_cast<std::size_t>(g.num_rb) * g.chunk_cap));
  return cb < g.chunks(pk);
}

TEST(SparseWeights, PruneMaskDeterministicWithBudgetedBlockCount) {
  // Remainder-heavy geometry: short last panel (k=40 over block_k=32 puts
  // only one 8-wide chunk in panel 1 against a chunk_cap of 2) and a short
  // last row block (m=10 -> 2-row trailing block).
  const int m = 10, k = 40, block_k = 32;
  const SparseGrid g(m, k, block_k);
  EXPECT_EQ(g.num_pk, 2);
  EXPECT_EQ(g.num_rb, 3);
  EXPECT_EQ(g.chunk_cap, 2);
  EXPECT_EQ(g.chunks(0), 2);
  EXPECT_EQ(g.chunks(1), 1);  // kc=8: one short chunk, one padding slot
  EXPECT_EQ(g.valid_blocks(), 9u);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_EQ(g.segments(), 6u);

  const auto w =
      test::random_vec(static_cast<std::size_t>(m) * k, 51, -2.0f, 2.0f);
  for (int density_pm : {1, 250, 500, 750, 1000}) {
    const auto mask = prune_block_mask(w.data(), m, k, block_k, density_pm);
    ASSERT_EQ(mask.size(), g.size());
    std::size_t kept = 0;
    for (std::uint8_t b : mask) kept += b;
    // ceil(density * valid): the admission estimate and the pack agree on
    // this count by construction.
    EXPECT_EQ(kept, (g.valid_blocks() * static_cast<std::size_t>(density_pm) +
                     999) /
                        1000)
        << "density_pm=" << density_pm;
    // Padding slots never survive.
    EXPECT_EQ(mask[g.index(1, 0, 1)], 0u);
    EXPECT_EQ(mask[g.index(1, 1, 1)], 0u);
    EXPECT_EQ(mask[g.index(1, 2, 1)], 0u);
    // Deterministic: same weights, same mask.
    EXPECT_EQ(prune_block_mask(w.data(), m, k, block_k, density_pm), mask);
  }
  // Full density keeps every valid block — apply_block_mask is then the
  // identity on the weights.
  const auto full = prune_block_mask(w.data(), m, k, block_k, 1000);
  auto w2 = w;
  apply_block_mask(w2.data(), m, k, block_k, full);
  EXPECT_EQ(std::memcmp(w2.data(), w.data(), w.size() * sizeof(float)), 0);

  // Tie-break pin: identical block magnitudes resolve to the lower linear
  // index, so a constant matrix keeps a prefix of the block order.
  std::vector<float> flat(static_cast<std::size_t>(m) * k, 1.0f);
  const auto tie = prune_block_mask(flat.data(), m, k, block_k, 500);
  std::size_t last_kept = 0, first_dropped = g.size();
  for (std::size_t i = 0; i < tie.size(); ++i) {
    if (tie[i] != 0u) last_kept = i;
  }
  for (std::size_t i = 0; i < tie.size(); ++i) {
    if (tie[i] == 0u && flat_index_valid(g, i)) {
      first_dropped = i;
      break;
    }
  }
  EXPECT_LT(last_kept, first_dropped);
}

TEST(SparseWeights, SparseImageLayoutRoundTripsKeptBlocks) {
  const int m = 12, k = 40, block_k = 32;
  const SparseGrid g(m, k, block_k);
  const auto w =
      test::random_vec(static_cast<std::size_t>(m) * k, 61, -3.0f, 3.0f);
  const int density_pm = 500;
  const auto mask = prune_block_mask(w.data(), m, k, block_k, density_pm);
  auto pruned = w;
  apply_block_mask(pruned.data(), m, k, block_k, mask);

  for (PackFormat fmt : {PackFormat::SparseF32, PackFormat::SparseBf16}) {
    const PackedWeights img(w.data(), m, k, block_k, fmt, density_pm);
    EXPECT_TRUE(img.sparse());
    EXPECT_EQ(img.format(), fmt);
    EXPECT_EQ(img.density_pm(), density_pm);
    ASSERT_NE(img.sparse_meta(), nullptr);
    EXPECT_EQ(img.sparse_meta_bytes(), 2 * g.segments() * sizeof(std::uint64_t));
    // The static admission estimate prices full-size tiles, so it bounds
    // the actual image (trailing blocks are smaller) without undercounting.
    EXPECT_LE(img.bytes(),
              PackedWeightCache::image_bytes(m, k, block_k, fmt, density_pm));

    // Reconstruct the dense matrix from bitmap + offsets + value stream and
    // compare against the pruned reference: every kept block round-trips,
    // everything else is zero.
    std::vector<float> rebuilt(static_cast<std::size_t>(m) * k, 0.0f);
    std::size_t streamed_elems = 0;
    for (int pk = 0; pk < g.num_pk; ++pk) {
      for (int rb = 0; rb < g.num_rb; ++rb) {
        const std::size_t seg =
            img.sparse_segment(rb * kSparseBlockM, pk * block_k);
        ASSERT_EQ(seg, static_cast<std::size_t>(pk) * g.num_rb +
                           static_cast<std::size_t>(rb));
        const std::uint64_t bitmap = *img.sparse_bitmap_word(seg);
        const auto* vals =
            static_cast<const std::uint8_t*>(img.sparse_values(seg));
        const int rows = g.rows(rb);
        for (int cb = 0; cb < g.chunks(pk); ++cb) {
          if ((bitmap & (std::uint64_t{1} << cb)) == 0u) {
            EXPECT_EQ(mask[g.index(pk, rb, cb)], 0u);
            continue;
          }
          EXPECT_EQ(mask[g.index(pk, rb, cb)], 1u);
          const int cols = g.cols(pk, cb);
          for (int r = 0; r < rows; ++r) {
            for (int c = 0; c < cols; ++c) {
              const std::uint8_t* e =
                  vals + (static_cast<std::size_t>(r) * cols + c) *
                             img.elem_bytes();
              float v;
              if (fmt == PackFormat::SparseF32) {
                std::memcpy(&v, e, sizeof(v));
              } else {
                std::uint16_t h;
                std::memcpy(&h, e, sizeof(h));
                v = f32_from_bf16(h);
              }
              rebuilt[static_cast<std::size_t>(rb * kSparseBlockM + r) * k +
                      pk * block_k + cb * kSparseBlockK + c] = v;
            }
          }
          vals += static_cast<std::size_t>(rows) * cols * img.elem_bytes();
          streamed_elems += static_cast<std::size_t>(rows) * cols;
        }
        // Bitmap bits above the panel's chunk count are never set.
        for (int cb = g.chunks(pk); cb < 64; ++cb)
          EXPECT_EQ(bitmap & (std::uint64_t{1} << cb), 0u);
      }
    }
    EXPECT_EQ(img.data_bytes(), streamed_elems * img.elem_bytes());
    for (std::size_t i = 0; i < rebuilt.size(); ++i) {
      const float want = fmt == PackFormat::SparseF32
                             ? pruned[i]
                             : f32_from_bf16(bf16_from_f32(pruned[i]));
      EXPECT_EQ(rebuilt[i], want) << "elem " << i << " " << to_string(fmt);
    }
  }
}

/// Weight-bound VGG-block-5-flavored shape shared by the execution tests
/// (same shape the quantized suite pins).
dnn::ConvDesc sparse_conv_desc() {
  dnn::ConvDesc d;
  d.in_c = 64;
  d.in_h = d.in_w = 8;
  d.out_c = 128;
  d.ksize = 3;
  d.stride = 1;
  d.pad = 1;
  d.batch_norm = true;
  d.act = dnn::Activation::Leaky;
  return d;
}

/// Forward of one conv layer under `plan` (functional vlen-512 engine),
/// batch-fused over `batch` when `batched`, per item otherwise.
/// `mutate_weights` runs before prepare() — the dense-over-pruned-weights
/// reference mutates the layer's weights in place.
std::vector<float> run_sparse(
    const core::BackendPlan& plan, int batch, bool batched,
    const std::function<void(float*, const dnn::ConvDesc&)>& mutate_weights =
        nullptr) {
  const dnn::ConvDesc d = sparse_conv_desc();
  vla::VectorEngine eng(512);
  dnn::ExecContext ctx(eng);
  dnn::ConvLayer layer(d, 99);
  if (mutate_weights) mutate_weights(layer.mutable_weights(), d);
  core::ConvolutionEngine engine(plan);
  engine.install(ctx);
  engine.prepare(d, layer.weights());

  dnn::Tensor input(batch, d.in_c, d.in_h, d.in_w);
  input.randomize_batch(777, -1.0f, 1.0f);
  const std::vector<const dnn::Tensor*> ins{&input};
  layer.prepare_batch(ins);
  bool fused = false;
  if (batched) fused = layer.forward_batch(ctx, ins);
  if (!fused)
    for (int b = 0; b < batch; ++b) layer.forward_item(ctx, ins, b);
  const dnn::Tensor& out = layer.output();
  return {out.data(), out.data() + out.size()};
}

core::BackendPlan resident_fused_plan(PackFormat fmt) {
  core::EnginePolicy policy = core::EnginePolicy::fused();
  policy.weight_resident = true;
  return core::BackendPlan::uniform(policy).with_precision(fmt);
}

/// Zeroes the blocks a `density` prune would drop, on the plan's block_k
/// grid — the dense reference the sparse kernel must match bit-for-bit.
std::function<void(float*, const dnn::ConvDesc&)> prune_mutator(
    const core::BackendPlan& plan, int density_pm) {
  const int block_k = plan.opt6.blocks.block_k;
  return [block_k, density_pm](float* w, const dnn::ConvDesc& d) {
    const auto mask = prune_block_mask(w, d.gemm_m(), d.gemm_k(), block_k,
                                       density_pm);
    apply_block_mask(w, d.gemm_m(), d.gemm_k(), block_k, mask);
  };
}

TEST(SparseWeights, SparseConvBitIdenticalToDenseOverPrunedWeights) {
  // The PR's core contract: skipping a zeroed block is arithmetically
  // invisible (each skipped FMA would add ±0 to a finite accumulator) and
  // the per-element k-accumulation order is ascending in both kernels, so
  // the sparse image must reproduce the dense kernel over block-pruned
  // weights BITWISE — fp32 against the fp32-resident dense path, bf16
  // against the bf16-resident dense path.
  struct Case {
    PackFormat dense_fmt;
    const char* tag;
  };
  for (const Case c : {Case{PackFormat::F32, "sparse-f32"},
                       Case{PackFormat::Bf16, "sparse-bf16"}}) {
    const core::BackendPlan sparse_plan =
        resident_fused_plan(c.dense_fmt).with_sparsity(0.5);
    ASSERT_EQ(sparse_plan.sparsity_pm, 500) << c.tag;
    const auto sparse_out = run_sparse(sparse_plan, 1, false);
    const auto dense_over_pruned =
        run_sparse(resident_fused_plan(c.dense_fmt), 1, false,
                   prune_mutator(sparse_plan, sparse_plan.sparsity_pm));
    ASSERT_EQ(sparse_out.size(), dense_over_pruned.size()) << c.tag;
    EXPECT_EQ(std::memcmp(sparse_out.data(), dense_over_pruned.data(),
                          sparse_out.size() * sizeof(float)),
              0)
        << c.tag;
  }
}

TEST(SparseWeights, Sparse50StaysInsidePinnedAccuracyGate) {
  // Empirical backstop for kSparseOutputRelTol: uniform-random weights are
  // the incompressible worst case for a magnitude prune, and even there a
  // 0.5-density image stays inside the pinned ceiling the selector's
  // functional gate enforces.
  const auto ref = run_sparse(resident_fused_plan(PackFormat::F32), 1, false);
  float max_abs_ref = 0.0f;
  for (float x : ref) max_abs_ref = std::max(max_abs_ref, std::fabs(x));
  ASSERT_GT(max_abs_ref, 0.0f);
  const auto out = run_sparse(
      resident_fused_plan(PackFormat::F32).with_sparsity(0.5), 1, false);
  ASSERT_EQ(out.size(), ref.size());
  float max_abs_err = 0.0f;
  for (std::size_t i = 0; i < ref.size(); ++i)
    max_abs_err = std::max(max_abs_err, std::fabs(ref[i] - out[i]));
  EXPECT_LE(max_abs_err, core::kSparseOutputRelTol * max_abs_ref);
  // And the prune genuinely changed the output — the gate is not vacuous.
  EXPECT_GT(max_abs_err, 0.0f);
}

TEST(SparseWeights, SparseBatchFusedBitIdenticalToPerItem) {
  // The residency bit-identity contract carries over to the sparse
  // backends: batch-fused execution over a resident sparse image produces
  // the same bits as the per-item path over the same image.
  for (PackFormat fmt : {PackFormat::F32, PackFormat::Bf16}) {
    const core::BackendPlan plan = resident_fused_plan(fmt).with_sparsity(0.5);
    const auto fused = run_sparse(plan, 4, true);
    const auto items = run_sparse(plan, 4, false);
    ASSERT_EQ(fused.size(), items.size());
    EXPECT_EQ(std::memcmp(fused.data(), items.data(),
                          fused.size() * sizeof(float)),
              0)
        << to_string(fmt);
  }
}

TEST(SparseWeights, SparseFallsBackToDenseSiblingWhenNotResident) {
  // Residency-or-nothing: with a zero cache budget the sparse image is
  // never retained and the route runs the dense fp32 packing path over the
  // UNPRUNED weights — bit-identical to the plain fused plan. Nothing
  // prunes on the hot path.
  const auto ref =
      run_sparse(core::BackendPlan::uniform(core::EnginePolicy::fused()), 1,
                 false);
  core::BackendPlan starved =
      resident_fused_plan(PackFormat::F32).with_sparsity(0.5);
  starved.packed_weight_budget = 0;
  const auto out = run_sparse(starved, 1, false);
  ASSERT_EQ(out.size(), ref.size());
  EXPECT_EQ(std::memcmp(out.data(), ref.data(), ref.size() * sizeof(float)),
            0);
}

TEST(SparseWeights, BudgetShrinkEvictsSparseImageAndDenseSiblingTakesOver) {
  // The serving-time eviction story end to end: a resident sparse plan
  // serves pruned outputs; shrinking the engine's packed-weight budget to
  // zero evicts the image, and the very same engine then serves the dense
  // fp32 sibling's (unpruned) outputs — bit-identical to a plain fused run.
  const dnn::ConvDesc d = sparse_conv_desc();
  vla::VectorEngine eng(512);
  dnn::ExecContext ctx(eng);
  dnn::ConvLayer layer(d, 99);
  core::ConvolutionEngine engine(
      resident_fused_plan(PackFormat::F32).with_sparsity(0.5));
  engine.install(ctx);
  engine.prepare(d, layer.weights());
  EXPECT_EQ(engine.packed_weights().stats().entries, 1u);

  dnn::Tensor input(1, d.in_c, d.in_h, d.in_w);
  input.randomize_batch(777, -1.0f, 1.0f);
  const std::vector<const dnn::Tensor*> ins{&input};
  layer.prepare_batch(ins);
  layer.forward_item(ctx, ins, 0);
  const std::vector<float> sparse_out(layer.output().data(),
                                      layer.output().data() +
                                          layer.output().size());

  engine.packed_weights().set_budget(0);
  EXPECT_EQ(engine.packed_weights().stats().entries, 0u);
  EXPECT_GE(engine.packed_weights().stats().evictions, 1u);
  layer.forward_item(ctx, ins, 0);
  const std::vector<float> evicted_out(layer.output().data(),
                                       layer.output().data() +
                                           layer.output().size());

  const auto dense_ref =
      run_sparse(core::BackendPlan::uniform(core::EnginePolicy::fused()), 1,
                 false);
  ASSERT_EQ(evicted_out.size(), dense_ref.size());
  EXPECT_EQ(std::memcmp(evicted_out.data(), dense_ref.data(),
                        dense_ref.size() * sizeof(float)),
            0);
  // And the pre-eviction output really was the pruned one.
  EXPECT_NE(std::memcmp(sparse_out.data(), dense_ref.data(),
                        dense_ref.size() * sizeof(float)),
            0);
}

TEST(SparseWeights, MixedFormatEvictionAccountingUnderBudgetShrink) {
  // One layer's weights resident in three formats at once (the fp32 image,
  // the int8 image and a 50%-density sparse image), per-format bytes
  // summing to the total; a budget shrink LRU-evicts across formats and
  // the accounting follows the survivors exactly.
  const int m = 32, k = 64, block_k = 16;
  const auto w = test::random_vec(static_cast<std::size_t>(m) * k, 71);

  PackedWeightCache cache;
  const auto f32 = cache.prepare(w.data(), m, k, block_k);
  const auto i8 =
      cache.prepare(w.data(), m, k, block_k, PackFormat::Int8PerChannel);
  const auto sp =
      cache.prepare(w.data(), m, k, block_k, PackFormat::SparseF32, 500);
  ASSERT_NE(f32, nullptr);
  ASSERT_NE(i8, nullptr);
  ASSERT_NE(sp, nullptr);
  EXPECT_LT(sp->bytes(), f32->bytes());  // the point of the format

  auto s = cache.stats();
  EXPECT_EQ(s.entries, 3u);
  using F = PackFormat;
  EXPECT_EQ(s.resident_bytes_by_format[static_cast<int>(F::F32)],
            f32->bytes());
  EXPECT_EQ(s.resident_bytes_by_format[static_cast<int>(F::Int8PerChannel)],
            i8->bytes());
  EXPECT_EQ(s.resident_bytes_by_format[static_cast<int>(F::SparseF32)],
            sp->bytes());
  EXPECT_EQ(s.resident_bytes, f32->bytes() + i8->bytes() + sp->bytes());

  // Touch order: f32 (oldest) .. then refresh int8 and sparse so the LRU
  // order across formats is f32 < int8 < sparse.
  ASSERT_NE(cache.find(w.data(), m, k, block_k, PackFormat::Int8PerChannel),
            nullptr);
  ASSERT_NE(cache.find(w.data(), m, k, block_k, PackFormat::SparseF32, 500),
            nullptr);

  // Shrink to exactly the two newest images: the fp32 image (LRU) goes.
  cache.set_budget(i8->bytes() + sp->bytes());
  s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.resident_bytes_by_format[static_cast<int>(F::F32)], 0u);
  EXPECT_EQ(s.resident_bytes, i8->bytes() + sp->bytes());
  EXPECT_EQ(cache.find(w.data(), m, k, block_k), nullptr);
  EXPECT_NE(cache.find(w.data(), m, k, block_k, PackFormat::SparseF32, 500),
            nullptr);

  // Shrink again to the sparse image alone (it was touched after int8).
  cache.set_budget(sp->bytes());
  s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evictions, 2u);
  EXPECT_EQ(s.resident_bytes_by_format[static_cast<int>(F::Int8PerChannel)],
            0u);
  EXPECT_EQ(s.resident_bytes_by_format[static_cast<int>(F::SparseF32)],
            sp->bytes());
  EXPECT_EQ(s.resident_bytes, sp->bytes());
}

TEST(SparseWeights, DistinctDensitiesAreDistinctCacheEntries) {
  // The density is part of the cache key: a 25% image and a 50% image of
  // the same weights coexist, and a find() at the wrong density misses.
  const int m = 16, k = 64, block_k = 32;
  const auto w = test::random_vec(static_cast<std::size_t>(m) * k, 81);
  PackedWeightCache cache;
  ASSERT_NE(cache.prepare(w.data(), m, k, block_k, PackFormat::SparseF32, 250),
            nullptr);
  ASSERT_NE(cache.prepare(w.data(), m, k, block_k, PackFormat::SparseF32, 500),
            nullptr);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_NE(cache.find(w.data(), m, k, block_k, PackFormat::SparseF32, 250),
            nullptr);
  EXPECT_NE(cache.find(w.data(), m, k, block_k, PackFormat::SparseF32, 500),
            nullptr);
  EXPECT_EQ(cache.find(w.data(), m, k, block_k, PackFormat::SparseF32, 750),
            nullptr);
}

TEST(SparseWeights, ConcurrentReadersOfSparseImages) {
  // TSan target: worker threads find() sparse images and sweep both the
  // compacted value stream and the bitmap/offset metadata while prepare()
  // refreshes run concurrently — the read-only residency contract.
  const int m = 32, k = 64, block_k = 16;
  const auto w = test::random_vec(static_cast<std::size_t>(m) * k, 91);
  const PackFormat formats[] = {PackFormat::SparseF32, PackFormat::SparseBf16};
  constexpr std::size_t kNumFormats = std::size(formats);
  PackedWeightCache cache;
  for (PackFormat f : formats)
    ASSERT_NE(cache.prepare(w.data(), m, k, block_k, f, 500), nullptr);

  constexpr int kThreads = 4;
  std::vector<std::uint64_t> sums(kThreads * kNumFormats, 0);
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int rep = 0; rep < 50; ++rep) {
        for (std::size_t fi = 0; fi < kNumFormats; ++fi) {
          auto img = cache.find(w.data(), m, k, block_k, formats[fi], 500);
          ASSERT_NE(img, nullptr);
          std::uint64_t s = 0;
          const auto* bytes = static_cast<const std::uint8_t*>(img->raw());
          for (std::size_t i = 0; i < img->data_bytes(); ++i) s += bytes[i];
          const auto* meta =
              static_cast<const std::uint8_t*>(img->sparse_meta());
          for (std::size_t i = 0; i < img->sparse_meta_bytes(); ++i)
            s += meta[i];
          sums[static_cast<std::size_t>(t) * kNumFormats + fi] = s;
          cache.prepare(w.data(), m, k, block_k, formats[fi], 500);
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  for (int t = 1; t < kThreads; ++t)
    for (std::size_t fi = 0; fi < kNumFormats; ++fi)
      EXPECT_EQ(sums[fi],
                sums[static_cast<std::size_t>(t) * kNumFormats + fi]);
  EXPECT_EQ(cache.stats().packs, kNumFormats);
}

TEST(SparseWeights, SelectorAdmitsSparseOnlyUnderBudget) {
  // One weight-bound conv: the default budget must keep selection free of
  // sparse candidates, while AccuracyBudget::sparse(0.5) lists them — and
  // any sparse winner is weight-resident with the density installed
  // plan-wide.
  auto build = [] {
    auto net = std::make_unique<dnn::Network>(64, 8, 8, 3);
    net->add_conv(128, 3, 1, 1, dnn::Activation::Leaky, true);
    return net;
  };
  {
    auto net = build();
    const core::BackendPlan plan =
        core::select_per_layer(*net, sim::sve_gem5());
    EXPECT_EQ(plan.sparsity_pm, 1000);
    for (const auto& e : plan.entries)
      for (const auto& cand : e.candidates)
        EXPECT_FALSE(core::backend_sparse(cand.first))
            << core::to_string(cand.first);
  }
  {
    auto net = build();
    const core::BackendPlan plan = core::select_per_layer(
        *net, sim::sve_gem5(), 7, 4, core::AccuracyBudget::sparse(0.5f));
    ASSERT_FALSE(plan.entries.empty());
    EXPECT_EQ(plan.sparsity_pm, 500);
    bool any_sparse_candidate = false;
    for (const auto& e : plan.entries) {
      for (const auto& cand : e.candidates)
        if (core::backend_sparse(cand.first)) any_sparse_candidate = true;
      if (core::backend_sparse(e.backend)) {
        EXPECT_TRUE(e.weight_resident);
      }
    }
    // Uniform-random weights sit inside the pinned worst-case ceiling
    // (Sparse50StaysInsidePinnedAccuracyGate pins this empirically), so the
    // fp32 sparse candidate must be listed.
    EXPECT_TRUE(any_sparse_candidate);
  }
}

TEST(SparseWeights, SelectorMemoKeyIncludesFormatSignature) {
  // Memo-key regression (the per-shape-only bug): the sim cost of a shape
  // is format-specific. Two IDENTICAL layers in one net share a memo entry;
  // that entry must carry the sparse candidate when the budget admits one,
  // and the dense candidates' cycles must be unchanged relative to a
  // dense-only selection of the same net — i.e. enabling sparse changes the
  // memo key, not the dense pricing.
  auto build = [] {
    auto net = std::make_unique<dnn::Network>(64, 8, 8, 3);
    // Two identical-shape weight-bound convs (64ch 3x3 s1 at 8x8, M = N =
    // 64 so conv_weight_bound holds): the second is served by the memo.
    net->add_conv(64, 3, 1, 1, dnn::Activation::Leaky, true);
    net->add_conv(64, 3, 1, 1, dnn::Activation::Leaky, true);
    return net;
  };
  auto dense_net = build();
  const core::BackendPlan dense_plan =
      core::select_per_layer(*dense_net, sim::sve_gem5());
  auto sparse_net = build();
  const core::BackendPlan sparse_plan = core::select_per_layer(
      *sparse_net, sim::sve_gem5(), 7, 4, core::AccuracyBudget::sparse(0.5f));
  ASSERT_EQ(dense_plan.entries.size(), 2u);
  ASSERT_EQ(sparse_plan.entries.size(), 2u);

  auto cycles_of = [](const core::PlanEntry& e,
                      core::Backend b) -> std::uint64_t {
    for (const auto& cand : e.candidates)
      if (cand.first == b) return cand.second;
    return 0;
  };
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& de = dense_plan.entries[i];
    const auto& se = sparse_plan.entries[i];
    // Dense GEMM pricing is budget-invariant: the same shape simulates to
    // the same cycle count whether or not sparse candidates are in the set.
    // (Winograd candidates are excluded: their scratch allocations shift
    // heap addresses between runs and the address-mapped cache sim is
    // sensitive to layout, a known ~0.1% jitter orthogonal to the memo.)
    for (const auto& cand : de.candidates) {
      if (!core::backend_gemm6_family(cand.first)) continue;
      EXPECT_EQ(cycles_of(se, cand.first), cand.second)
          << "layer " << i << " " << core::to_string(cand.first);
    }
    // The sparse candidate exists only under the sparse budget, and its
    // cost is distinct from (here: below, it moves fewer bytes and runs
    // fewer MACs) the dense fused cost — a shape-only memo would have
    // cloned the dense table and listed no sparse entry at all.
    EXPECT_EQ(cycles_of(de, core::Backend::Gemm6Sparse), 0u) << "layer " << i;
    const std::uint64_t sparse_cycles =
        cycles_of(se, core::Backend::Gemm6Sparse);
    ASSERT_GT(sparse_cycles, 0u) << "layer " << i;
    EXPECT_LT(sparse_cycles, cycles_of(se, core::Backend::FusedGemm6))
        << "layer " << i;
  }
  // Both same-shape layers share one memo entry, so their candidate tables
  // are identical — including the sparse row.
  ASSERT_EQ(sparse_plan.entries[0].candidates.size(),
            sparse_plan.entries[1].candidates.size());
  for (std::size_t c = 0; c < sparse_plan.entries[0].candidates.size(); ++c) {
    EXPECT_EQ(sparse_plan.entries[0].candidates[c].first,
              sparse_plan.entries[1].candidates[c].first);
    EXPECT_EQ(sparse_plan.entries[0].candidates[c].second,
              sparse_plan.entries[1].candidates[c].second);
  }
}

/// Scheduler run under an explicit BackendPlan (the work-graph suite's
/// helper takes an EnginePolicy; sparse plans only exist as BackendPlans).
std::vector<float> run_sched_plan(dnn::Network& net,
                                  const core::BackendPlan& plan, int batch,
                                  int threads, runtime::ExecutorKind kind) {
  core::ConvolutionEngine engine(plan);
  runtime::SchedulerConfig cfg;
  cfg.threads = threads;
  cfg.executor = kind;
  runtime::BatchScheduler sched(engine, cfg);
  dnn::Tensor in(batch, net.in_c(), net.in_h(), net.in_w());
  in.randomize_batch(4321, 0.0f, 1.0f);
  runtime::BatchResult r = sched.wait(sched.submit(net, std::move(in)));
  return {r.output.data(), r.output.data() + r.output.size()};
}

TEST(SparseWeights, WorkGraphSparseBitIdenticalToSerialAcrossBatchesWorkers) {
  // Work-graph x sparse: sparse layers are weight-resident by construction,
  // so the scheduler batch-fuses them into barrier tasks; the graph
  // executor must stay bitwise equal to the serial one across batch sizes
  // and worker counts — including the fused-residual yolo net whose
  // shortcut layer aliases its producer's output.
  struct ModelCase {
    const char* tag;
    std::unique_ptr<dnn::Network> (*build)();
  };
  const ModelCase models[] = {
      {"vgg", [] { return dnn::build_vgg16(32, 4); }},
      {"yolo-res",
       [] {
         auto net = dnn::build_yolov3(32, 8);
         net->fuse_residuals();
         return net;
       }},
  };
  const core::BackendPlan plan =
      resident_fused_plan(PackFormat::F32).with_sparsity(0.5);
  for (const auto& m : models) {
    auto net = m.build();
    for (int batch : {1, 2, 4, 8}) {
      const auto ref = run_sched_plan(*net, plan, batch, 1,
                                      runtime::ExecutorKind::Serial);
      for (int threads : {1, 2, 4}) {
        const std::string tag = std::string(m.tag) +
                                " batch=" + std::to_string(batch) +
                                " threads=" + std::to_string(threads);
        const auto graph = run_sched_plan(*net, plan, batch, threads,
                                          runtime::ExecutorKind::Graph);
        ASSERT_EQ(graph.size(), ref.size()) << tag;
        EXPECT_EQ(std::memcmp(graph.data(), ref.data(),
                              ref.size() * sizeof(float)),
                  0)
            << tag;
      }
    }
  }
}

}  // namespace
}  // namespace vlacnn::gemm

// Tensor container semantics and ConvDesc geometry/derived quantities.

#include <gtest/gtest.h>

#include "dnn/conv_desc.hpp"
#include "dnn/tensor.hpp"

namespace vlacnn::dnn {
namespace {

TEST(Tensor, ShapeAndIndexing) {
  Tensor t(3, 4, 5);
  EXPECT_EQ(t.size(), 60u);
  t.at(2, 3, 4) = 7.0f;
  EXPECT_EQ(t[59], 7.0f);
  EXPECT_EQ(t.shape_str(), "3x4x5");
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(2, 2, 2);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, RandomizeDeterministic) {
  Tensor a(1, 8, 8), b(1, 8, 8);
  Rng r1(5), r2(5);
  a.randomize(r1);
  b.randomize(r2);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Tensor, RejectsBadShape) {
  Tensor t;
  EXPECT_THROW(t.reshape(0, 1, 1), InvalidArgument);
  EXPECT_THROW(t.reshape(1, -1, 1), InvalidArgument);
}

TEST(ConvDesc, OutputDims) {
  ConvDesc d;
  d.in_c = 3;
  d.in_h = 608;
  d.in_w = 608;
  d.out_c = 32;
  d.ksize = 3;
  d.stride = 1;
  d.pad = 1;
  EXPECT_EQ(d.out_h(), 608);
  EXPECT_EQ(d.out_w(), 608);
  d.stride = 2;
  EXPECT_EQ(d.out_h(), 304);
}

TEST(ConvDesc, GemmDimsMatchPaperLayer1) {
  // Paper Table IV L1: M=32, N=369664, K=27 (YOLOv3 first conv @ 608x608).
  ConvDesc d;
  d.in_c = 3;
  d.in_h = d.in_w = 608;
  d.out_c = 32;
  d.ksize = 3;
  d.stride = 1;
  d.pad = 1;
  EXPECT_EQ(d.gemm_m(), 32);
  EXPECT_EQ(d.gemm_k(), 27);
  EXPECT_EQ(d.gemm_n(), 369664);
  EXPECT_NEAR(d.arithmetic_intensity(), 7.32, 0.25);  // paper: AI = 7.32
}

TEST(ConvDesc, ArithmeticIntensityMatchesPaperL44) {
  // L44: M=1024, N=361, K=4608 -> AI = 126.
  ConvDesc d;
  d.in_c = 512;
  d.in_h = d.in_w = 19;
  d.out_c = 1024;
  d.ksize = 3;
  d.stride = 1;
  d.pad = 1;
  EXPECT_EQ(d.gemm_n(), 361);
  EXPECT_EQ(d.gemm_k(), 4608);
  EXPECT_NEAR(d.arithmetic_intensity(), 126.0, 3.0);
}

TEST(ConvDesc, FlopsFormula) {
  ConvDesc d;
  d.in_c = 2;
  d.in_h = d.in_w = 4;
  d.out_c = 3;
  d.ksize = 1;
  d.stride = 1;
  d.pad = 0;
  EXPECT_DOUBLE_EQ(d.flops(), 2.0 * 3 * 16 * 2);
}

TEST(ConvDesc, ValidateCatchesDegenerateShapes) {
  ConvDesc d;
  d.in_c = 1;
  d.in_h = 2;
  d.in_w = 2;
  d.out_c = 1;
  d.ksize = 5;
  d.stride = 1;
  d.pad = 0;  // output would be negative
  EXPECT_THROW(d.validate(), InvalidArgument);
}

}  // namespace
}  // namespace vlacnn::dnn

// Scoreboard timing model: occupancy scaling with lanes/VL, dependency
// stalls, in-flight window, memory-stall overlap, statistics.

#include <gtest/gtest.h>

#include "sim/timing_model.hpp"

namespace vlacnn::sim {
namespace {

MachineConfig base_cfg(unsigned lanes = 8, unsigned vlen = 512) {
  MachineConfig cfg = rvv_gem5();
  cfg.lanes = lanes;
  cfg.vlen_bits = vlen;
  // Isolate the scoreboard properties under test from the preset's
  // per-instruction dispatch overhead.
  cfg.vector_dispatch_cycles = 0.0;
  cfg.scalar_op_cycles = 1.0;
  return cfg;
}

TEST(Timing, SingleOpCostsStartupPlusOccupancy) {
  MachineConfig cfg = base_cfg();
  VectorTimingModel tm(cfg);
  tm.vop(VopClass::Fma, 0, {}, 128);  // 128 elems / 8 lanes = 16 cycles
  const std::uint64_t cycles = tm.finish();
  const auto startup = static_cast<std::uint64_t>(
      cfg.startup_base_cycles + cfg.startup_per_lane * cfg.lanes);
  EXPECT_EQ(cycles, startup + 16);
}

TEST(Timing, IndependentOpsPipelineThroughOccupancy) {
  // N independent FMAs: total ~= N*occupancy + one startup, not N*(both).
  VectorTimingModel tm(base_cfg());
  const int n = 100;
  for (int i = 0; i < n; ++i) tm.vop(VopClass::Fma, i % 8, {}, 64);
  const std::uint64_t cycles = tm.finish();
  EXPECT_LT(cycles, static_cast<std::uint64_t>(n) * (8 + 10 + 2));
  EXPECT_GE(cycles, static_cast<std::uint64_t>(n) * 8);  // occupancy bound
}

TEST(Timing, DependencyChainSerializesOnLatency) {
  // acc += ... repeatedly on the same register: each op waits for the
  // previous result (startup exposed every iteration).
  VectorTimingModel dep(base_cfg());
  const int n = 50;
  for (int i = 0; i < n; ++i) dep.vop(VopClass::Fma, 0, {0, 1}, 64);
  VectorTimingModel indep(base_cfg());
  for (int i = 0; i < n; ++i) indep.vop(VopClass::Fma, i % 16, {16 + i % 8}, 64);
  EXPECT_GT(dep.finish(), indep.finish() * 3 / 2);
}

TEST(Timing, MoreLanesShortenLongVectorOps) {
  // 8192-bit vectors: 2 lanes vs 8 lanes (paper §VI-B(c)).
  auto run = [](unsigned lanes) {
    MachineConfig cfg = base_cfg(lanes, 8192);
    VectorTimingModel tm(cfg);
    for (int i = 0; i < 200; ++i) tm.vop(VopClass::Fma, i % 16, {}, 256);
    return tm.finish();
  };
  EXPECT_GT(run(2), run(8));
}

TEST(Timing, LaneStartupPenaltyVisibleAtShortVl) {
  // 512-bit vectors: occupancy is tiny, so extra lanes mostly add startup;
  // scaling 4->8 lanes must NOT give the ~2x gain it gives at 8192-bit.
  auto run = [](unsigned lanes, unsigned vlen, std::uint64_t elems) {
    MachineConfig cfg = base_cfg(lanes, vlen);
    VectorTimingModel tm(cfg);
    for (int i = 0; i < 100; ++i) tm.vop(VopClass::Fma, 0, {0}, elems);
    return tm.finish();
  };
  const double short_gain =
      static_cast<double>(run(4, 512, 16)) / static_cast<double>(run(8, 512, 16));
  const double long_gain = static_cast<double>(run(4, 8192, 256)) /
                           static_cast<double>(run(8, 8192, 256));
  EXPECT_GT(long_gain, short_gain);
}

TEST(Timing, MemStallsAddExposedLatency) {
  VectorTimingModel tm(base_cfg());
  MemCost cost;
  cost.serial_cycles = 4;
  cost.overlappable_cycles = 100;
  cost.lines = 1;
  tm.vmem(VopClass::Load, 0, {}, 16, cost);
  const auto with_miss = tm.finish();

  VectorTimingModel tm2(base_cfg());
  MemCost hit;
  hit.serial_cycles = 4;
  hit.lines = 1;
  tm2.vmem(VopClass::Load, 0, {}, 16, hit);
  EXPECT_GE(with_miss, tm2.finish() + 100);
}

TEST(Timing, MlpOverlapsMissLatency) {
  MachineConfig ooo = a64fx();
  MachineConfig in_order = ooo;
  in_order.mem_level_parallelism = 1;
  MemCost cost;
  cost.serial_cycles = 5;
  cost.overlappable_cycles = 800;
  cost.lines = 8;
  VectorTimingModel a(ooo), b(in_order);
  a.vmem(VopClass::Load, 0, {}, 16, cost);
  b.vmem(VopClass::Load, 0, {}, 16, cost);
  EXPECT_LT(a.finish(), b.finish());
}

TEST(Timing, DramBandwidthFloorApplies)  {
  MachineConfig cfg = a64fx();  // high MLP
  VectorTimingModel tm(cfg);
  MemCost cost;
  cost.serial_cycles = 0;
  cost.overlappable_cycles = 100;  // tiny latency once overlapped
  cost.dram_lines = 1000;          // ...but 1000 lines of DRAM traffic
  cost.lines = 1000;
  tm.vmem(VopClass::Load, 0, {}, 16, cost);
  const double bw_cycles = 1000.0 * cfg.l2.line_bytes / cfg.dram_bytes_per_cycle;
  EXPECT_GE(tm.finish(), static_cast<std::uint64_t>(bw_cycles));
}

TEST(Timing, GatherOccupancyIsPerElement) {
  VectorTimingModel tm(base_cfg());
  MemCost c;
  c.serial_cycles = 0;
  tm.vmem(VopClass::Gather, 0, {}, 128, c);
  const auto gather_cycles = tm.finish();
  VectorTimingModel tm2(base_cfg());
  tm2.vmem(VopClass::Load, 0, {}, 128, c);
  EXPECT_GT(gather_cycles, tm2.finish() * 3);
}

TEST(Timing, TwoPipesDoubleFmaThroughput) {
  auto run = [](unsigned pipes) {
    MachineConfig cfg = a64fx();
    cfg.vector_pipes = pipes;
    VectorTimingModel tm(cfg);
    for (int i = 0; i < 400; ++i) tm.vop(VopClass::Fma, i % 16, {}, 16);
    return tm.finish();
  };
  const auto one = run(1), two = run(2);
  EXPECT_GT(one, two * 4 / 3);
}

TEST(Timing, StatsAccumulate) {
  VectorTimingModel tm(base_cfg());
  tm.vop(VopClass::Fma, 0, {}, 100);
  tm.vop(VopClass::Arith, 1, {}, 50);
  tm.scalar(7);
  tm.finish();
  const TimingStats& s = tm.stats();
  EXPECT_EQ(s.vector_instructions, 2u);
  EXPECT_EQ(s.scalar_ops, 7u);
  EXPECT_EQ(s.flops, 2u * 100 + 50);
  EXPECT_DOUBLE_EQ(s.avg_vector_length_elems(), 75.0);
}

TEST(Timing, SetVlDoesNotPolluteAvgVl) {
  VectorTimingModel tm(base_cfg());
  tm.vop(VopClass::SetVl, -1, {}, 0);
  tm.vop(VopClass::Load, 0, {}, 128);
  EXPECT_DOUBLE_EQ(tm.stats().avg_vector_length_elems(), 128.0);
}

TEST(Timing, ResetRestoresInitialState) {
  VectorTimingModel tm(base_cfg());
  tm.vop(VopClass::Fma, 0, {}, 64);
  tm.finish();
  tm.reset();
  EXPECT_EQ(tm.stats().cycles, 0u);
  EXPECT_EQ(tm.now(), 0u);
}

}  // namespace
}  // namespace vlacnn::sim

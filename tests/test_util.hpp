#pragma once

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "dnn/conv_desc.hpp"

namespace vlacnn::test {

/// Direct (naive sliding-window) convolution reference: the ground truth
/// both the im2col+GEMM path and the Winograd path must match.
inline void conv_direct_ref(const dnn::ConvDesc& d, const float* input,
                            const float* weights, float* output) {
  const int oh = d.out_h(), ow = d.out_w();
  for (int oc = 0; oc < d.out_c; ++oc) {
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        double acc = 0.0;
        for (int ic = 0; ic < d.in_c; ++ic) {
          for (int ky = 0; ky < d.ksize; ++ky) {
            const int iy = y * d.stride + ky - d.pad;
            if (iy < 0 || iy >= d.in_h) continue;
            for (int kx = 0; kx < d.ksize; ++kx) {
              const int ix = x * d.stride + kx - d.pad;
              if (ix < 0 || ix >= d.in_w) continue;
              const float w =
                  weights[((static_cast<std::size_t>(oc) * d.in_c + ic) *
                               d.ksize +
                           ky) *
                              d.ksize +
                          kx];
              const float v =
                  input[(static_cast<std::size_t>(ic) * d.in_h + iy) * d.in_w +
                        ix];
              acc += static_cast<double>(w) * v;
            }
          }
        }
        output[(static_cast<std::size_t>(oc) * oh + y) * ow + x] =
            static_cast<float>(acc);
      }
    }
  }
}

inline std::vector<float> random_vec(std::size_t n, std::uint64_t seed,
                                     float lo = -1.0f, float hi = 1.0f) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

inline float max_abs_diff(const float* a, const float* b, std::size_t n) {
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

/// Relative tolerance check that scales with the magnitude of the data —
/// Winograd's transform arithmetic legitimately reorders float additions.
inline bool allclose(const float* a, const float* b, std::size_t n,
                     float rtol = 1e-4f, float atol = 1e-4f) {
  for (std::size_t i = 0; i < n; ++i) {
    const float diff = std::fabs(a[i] - b[i]);
    const float bound = atol + rtol * std::max(std::fabs(a[i]), std::fabs(b[i]));
    if (diff > bound) return false;
  }
  return true;
}

}  // namespace vlacnn::test

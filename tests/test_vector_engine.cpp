// Functional semantics of the VLA vector engine (no simulator attached):
// strip-mining, predication, every memory-access flavour, arithmetic ops,
// reductions, and permutes — across several hardware vector lengths.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "test_util.hpp"
#include "vla/vector_engine.hpp"

namespace vlacnn::vla {
namespace {

using test::random_vec;

class VectorEngineTest : public ::testing::TestWithParam<unsigned> {
 protected:
  VectorEngine make() { return VectorEngine(GetParam()); }
};

TEST_P(VectorEngineTest, VlmaxMatchesBits) {
  VectorEngine eng = make();
  EXPECT_EQ(eng.vlmax(), GetParam() / 32);
  EXPECT_EQ(eng.vlen_bits(), GetParam());
}

TEST_P(VectorEngineTest, SetvlGrantsAtMostVlmax) {
  VectorEngine eng = make();
  EXPECT_EQ(eng.setvl(1), 1u);
  EXPECT_EQ(eng.setvl(eng.vlmax()), eng.vlmax());
  EXPECT_EQ(eng.setvl(eng.vlmax() + 100), eng.vlmax());
  EXPECT_EQ(eng.setvl(0), 0u);
}

TEST_P(VectorEngineTest, LoadStoreRoundTrip) {
  VectorEngine eng = make();
  const std::size_t n = eng.vlmax();
  auto src = random_vec(n, 1);
  std::vector<float> dst(n, 0.0f);
  eng.setvl(n);
  eng.vload(3, src.data());
  eng.vstore(3, dst.data());
  EXPECT_EQ(src, dst);
}

TEST_P(VectorEngineTest, PartialStoreOnlyTouchesGvl) {
  VectorEngine eng = make();
  if (eng.vlmax() < 4) GTEST_SKIP();
  const std::size_t n = eng.vlmax();
  auto src = random_vec(n, 2);
  std::vector<float> dst(n, -7.0f);
  eng.setvl(n / 2);
  eng.vload(0, src.data());
  eng.vstore(0, dst.data());
  for (std::size_t i = 0; i < n / 2; ++i) EXPECT_EQ(dst[i], src[i]);
  for (std::size_t i = n / 2; i < n; ++i) EXPECT_EQ(dst[i], -7.0f);
}

TEST_P(VectorEngineTest, StridedLoadStore) {
  VectorEngine eng = make();
  const std::size_t n = eng.vlmax();
  std::vector<float> src(n * 3, 0.0f);
  for (std::size_t i = 0; i < n; ++i) src[3 * i] = static_cast<float>(i) + 1;
  std::vector<float> mid(n, 0.0f), dst(n * 2, 0.0f);
  eng.setvl(n);
  eng.vload_strided(1, src.data(), 3);
  eng.vstore(1, mid.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(mid[i], static_cast<float>(i) + 1);
  eng.vstore_strided(1, dst.data(), 2);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(dst[2 * i], static_cast<float>(i) + 1);
}

TEST_P(VectorEngineTest, GatherScatter) {
  VectorEngine eng = make();
  const std::size_t n = eng.vlmax();
  auto base = random_vec(4 * n, 3);
  std::vector<std::int32_t> idx(n);
  for (std::size_t i = 0; i < n; ++i)
    idx[i] = static_cast<std::int32_t>((i * 7) % (4 * n));
  eng.setvl(n);
  eng.vgather(5, base.data(), idx.data());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(eng.lane(5, i), base[static_cast<std::size_t>(idx[i])]);

  std::vector<float> out(4 * n, 0.0f);
  std::vector<std::int32_t> sidx(n);
  for (std::size_t i = 0; i < n; ++i) sidx[i] = static_cast<std::int32_t>(3 * i);
  eng.vscatter(5, out.data(), sidx.data());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(out[3 * i], eng.lane(5, i));
}

TEST_P(VectorEngineTest, ArithmeticOps) {
  VectorEngine eng = make();
  const std::size_t n = eng.vlmax();
  auto a = random_vec(n, 4), b = random_vec(n, 5, 0.5f, 2.0f);
  eng.setvl(n);
  eng.vload(0, a.data());
  eng.vload(1, b.data());

  eng.vadd(2, 0, 1);
  eng.vsub(3, 0, 1);
  eng.vmul(4, 0, 1);
  eng.vdiv(5, 0, 1);
  eng.vmax(6, 0, 1);
  eng.vmin(7, 0, 1);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(eng.lane(2, i), a[i] + b[i]);
    EXPECT_FLOAT_EQ(eng.lane(3, i), a[i] - b[i]);
    EXPECT_FLOAT_EQ(eng.lane(4, i), a[i] * b[i]);
    EXPECT_FLOAT_EQ(eng.lane(5, i), a[i] / b[i]);
    EXPECT_FLOAT_EQ(eng.lane(6, i), std::max(a[i], b[i]));
    EXPECT_FLOAT_EQ(eng.lane(7, i), std::min(a[i], b[i]));
  }
}

TEST_P(VectorEngineTest, ScalarOperandForms) {
  VectorEngine eng = make();
  const std::size_t n = eng.vlmax();
  auto a = random_vec(n, 6);
  eng.setvl(n);
  eng.vload(0, a.data());
  eng.vadd_scalar(1, 0, 2.5f);
  eng.vmul_scalar(2, 0, -3.0f);
  eng.vmax_scalar(3, 0, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(eng.lane(1, i), a[i] + 2.5f);
    EXPECT_FLOAT_EQ(eng.lane(2, i), a[i] * -3.0f);
    EXPECT_FLOAT_EQ(eng.lane(3, i), std::max(a[i], 0.0f));
  }
}

TEST_P(VectorEngineTest, FmaForms) {
  VectorEngine eng = make();
  const std::size_t n = eng.vlmax();
  auto a = random_vec(n, 7), b = random_vec(n, 8), c = random_vec(n, 9);
  eng.setvl(n);
  eng.vload(0, a.data());
  eng.vload(1, b.data());
  eng.vload(2, c.data());
  eng.vfma(0, 1, 2);  // a += b*c
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(eng.lane(0, i), a[i] + b[i] * c[i]);
  eng.vload(0, a.data());
  eng.vfma_scalar(0, 1.5f, 1);  // a += 1.5*b
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(eng.lane(0, i), a[i] + 1.5f * b[i]);
}

TEST_P(VectorEngineTest, Broadcast) {
  VectorEngine eng = make();
  eng.setvl(eng.vlmax());
  eng.vbroadcast(9, 42.0f);
  for (std::size_t i = 0; i < eng.vlmax(); ++i) EXPECT_EQ(eng.lane(9, i), 42.0f);
}

TEST_P(VectorEngineTest, Reductions) {
  VectorEngine eng = make();
  const std::size_t n = eng.vlmax();
  std::vector<float> a(n);
  std::iota(a.begin(), a.end(), 1.0f);
  eng.setvl(n);
  eng.vload(0, a.data());
  EXPECT_FLOAT_EQ(eng.vredsum(0), static_cast<float>(n * (n + 1) / 2));
  EXPECT_FLOAT_EQ(eng.vredmax(0), static_cast<float>(n));
}

TEST_P(VectorEngineTest, WhileltPredication) {
  VectorEngine eng = make();
  const std::size_t n = eng.vlmax();
  // whilelt at the loop tail: only (total - i) lanes active.
  const std::size_t total = n + n / 2 + 1;
  const std::size_t active = eng.whilelt(0, n, total);
  EXPECT_EQ(active, std::min(n, total - n));
  EXPECT_EQ(eng.active_lanes(0), active);

  std::vector<float> src(n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) src[i] = static_cast<float>(i) + 1;
  eng.vload_pred(1, 0, src.data());
  for (std::size_t i = 0; i < n; ++i) {
    if (i < active)
      EXPECT_EQ(eng.lane(1, i), src[i]);
    else
      EXPECT_EQ(eng.lane(1, i), 0.0f);
  }

  std::vector<float> dst(n, -1.0f);
  eng.vstore_pred(1, 0, dst.data());
  for (std::size_t i = 0; i < n; ++i) {
    if (i < active)
      EXPECT_EQ(dst[i], src[i]);
    else
      EXPECT_EQ(dst[i], -1.0f);
  }
}

TEST_P(VectorEngineTest, PredicatedFma) {
  VectorEngine eng = make();
  const std::size_t n = eng.vlmax();
  eng.whilelt(2, 0, n / 2 + 1);
  auto a = random_vec(n, 10), b = random_vec(n, 11);
  eng.ptrue(3);
  eng.setvl(n);
  eng.vload(0, a.data());
  eng.vload(1, b.data());
  eng.vbroadcast(4, 1.0f);
  eng.vfma_pred(4, 2, 0, 1);
  const std::size_t act = n / 2 + 1 > n ? n : n / 2 + 1;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < act)
      EXPECT_FLOAT_EQ(eng.lane(4, i), 1.0f + a[i] * b[i]);
    else
      EXPECT_FLOAT_EQ(eng.lane(4, i), 1.0f);
  }
}

TEST_P(VectorEngineTest, PermuteAndZip) {
  VectorEngine eng = make();
  const std::size_t n = eng.vlmax();
  std::vector<float> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<float>(i);
    b[i] = static_cast<float>(100 + i);
  }
  eng.setvl(n);
  eng.vload(0, a.data());
  eng.vload(1, b.data());

  std::vector<std::int32_t> rev(n);
  for (std::size_t i = 0; i < n; ++i)
    rev[i] = static_cast<std::int32_t>(n - 1 - i);
  eng.vpermute(2, 0, rev.data());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(eng.lane(2, i), a[n - 1 - i]);

  if (n >= 2) {
    eng.vzip_lo(3, 0, 1);
    eng.vzip_hi(4, 0, 1);
    for (std::size_t i = 0; i < n / 2; ++i) {
      EXPECT_EQ(eng.lane(3, 2 * i), a[i]);
      EXPECT_EQ(eng.lane(3, 2 * i + 1), b[i]);
      EXPECT_EQ(eng.lane(4, 2 * i), a[n / 2 + i]);
      EXPECT_EQ(eng.lane(4, 2 * i + 1), b[n / 2 + i]);
    }
  }
}

TEST_P(VectorEngineTest, RegisterBoundsChecked) {
  VectorEngine eng = make();
  EXPECT_THROW(eng.vbroadcast(32, 0.0f), InvalidArgument);
  EXPECT_THROW(eng.vbroadcast(-1, 0.0f), InvalidArgument);
  EXPECT_THROW(eng.whilelt(16, 0, 1), InvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(VectorLengths, VectorEngineTest,
                         ::testing::Values(128u, 512u, 1024u, 2048u, 8192u,
                                           16384u),
                         [](const auto& info) {
                           return "vl" + std::to_string(info.param);
                         });

TEST(VectorEngineEdge, RejectsBadVectorLengths) {
  EXPECT_THROW(VectorEngine(100), InvalidArgument);
  EXPECT_THROW(VectorEngine(64), InvalidArgument);
  EXPECT_THROW(VectorEngine(1 << 20), InvalidArgument);
}

TEST(VectorEngineEdge, TailResidueClassesRoundTrip) {
  // Property: copying n elements via strip-mined setvl loops is exact for
  // every residue class of n mod VLMAX.
  VectorEngine eng(512);
  const std::size_t vlmax = eng.vlmax();
  for (std::size_t n = 1; n <= 3 * vlmax + 1; ++n) {
    auto src = random_vec(n, 100 + n);
    std::vector<float> dst(n, 0.0f);
    for (std::size_t i = 0; i < n;) {
      const std::size_t vl = eng.setvl(n - i);
      eng.vload(0, src.data() + i);
      eng.vstore(0, dst.data() + i);
      i += vl;
    }
    ASSERT_EQ(src, dst) << "n=" << n;
  }
}

}  // namespace
}  // namespace vlacnn::vla

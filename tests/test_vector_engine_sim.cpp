// Instrumented vector engine: the same kernel code must produce identical
// numerics with and without a simulator attached, while feeding cycle and
// cache statistics.

#include <gtest/gtest.h>

#include <vector>

#include "sim/sim_context.hpp"
#include "test_util.hpp"
#include "vla/vector_engine.hpp"

namespace vlacnn::vla {
namespace {

using test::random_vec;

TEST(EngineSim, NumericsIdenticalWithAndWithoutSim) {
  auto src = random_vec(1000, 1);
  auto run = [&](VectorEngine& eng) {
    std::vector<float> out(src.size(), 0.0f);
    for (std::size_t i = 0; i < src.size();) {
      const std::size_t vl = eng.setvl(src.size() - i);
      eng.vload(0, src.data() + i);
      eng.vmul_scalar(1, 0, 3.0f);
      eng.vfma_scalar(1, -1.0f, 0);
      eng.vstore(1, out.data() + i);
      i += vl;
    }
    return out;
  };
  VectorEngine plain(512);
  sim::SimContext ctx(sim::rvv_gem5());
  VectorEngine instrumented(ctx);
  EXPECT_EQ(run(plain), run(instrumented));
}

TEST(EngineSim, EngineTakesVlenFromMachine) {
  sim::SimContext ctx(sim::rvv_gem5().with_vlen(4096));
  VectorEngine eng(ctx);
  EXPECT_EQ(eng.vlen_bits(), 4096u);
  EXPECT_EQ(eng.vlmax(), 128u);
}

TEST(EngineSim, CyclesAccumulateMonotonically) {
  sim::SimContext ctx(sim::rvv_gem5());
  VectorEngine eng(ctx);
  auto buf = random_vec(256, 2);
  eng.setvl(16);
  eng.vload(0, buf.data());
  const auto c1 = ctx.cycles();
  eng.vload(1, buf.data() + 16);
  eng.vfma(0, 0, 1);
  const auto c2 = ctx.cycles();
  EXPECT_GT(c1, 0u);
  EXPECT_GT(c2, c1);
}

TEST(EngineSim, MemoryOpsReachTheCaches) {
  sim::SimContext ctx(sim::sve_gem5());
  VectorEngine eng(ctx);
  auto buf = random_vec(64, 3);
  eng.setvl(16);
  eng.vload(0, buf.data());
  EXPECT_GT(ctx.memory().l1_stats().accesses, 0u);
}

TEST(EngineSim, RepeatedLoadsHitCache) {
  sim::SimContext ctx(sim::sve_gem5());
  VectorEngine eng(ctx);
  auto buf = random_vec(16, 4);
  eng.setvl(16);
  eng.vload(0, buf.data());
  const auto misses_cold = ctx.memory().l1_stats().misses;
  for (int i = 0; i < 10; ++i) eng.vload(0, buf.data());
  EXPECT_EQ(ctx.memory().l1_stats().misses, misses_cold);
}

TEST(EngineSim, AvgVectorLengthReflectsTails) {
  // 100 full strips + tail of 1 element: avg VL just below VLMAX, the
  // Table III effect.
  sim::SimContext ctx(sim::rvv_gem5().with_vlen(512));
  VectorEngine eng(ctx);
  auto buf = random_vec(16 * 100 + 1, 5);
  for (std::size_t i = 0; i < buf.size();) {
    const std::size_t vl = eng.setvl(buf.size() - i);
    eng.vload(0, buf.data() + i);
    i += vl;
  }
  const double avg = ctx.timing().stats().avg_vector_length_elems();
  EXPECT_LT(avg, 16.0);
  EXPECT_GT(avg, 15.5);
}

TEST(EngineSim, GatherCostsMoreThanUnitLoad) {
  auto cycles_for = [](bool gather) {
    sim::SimContext ctx(sim::rvv_gem5().with_vlen(2048));
    VectorEngine eng(ctx);
    static std::vector<float> buf;
    buf = random_vec(4096, 6);
    std::vector<std::int32_t> idx(64);
    for (int i = 0; i < 64; ++i) idx[static_cast<std::size_t>(i)] = i * 64 % 4096;
    eng.setvl(64);
    for (int r = 0; r < 20; ++r) {
      if (gather)
        eng.vgather(0, buf.data(), idx.data());
      else
        eng.vload(0, buf.data());
    }
    return ctx.cycles();
  };
  EXPECT_GT(cycles_for(true), cycles_for(false));
}

TEST(EngineSim, ScalarOpsAdvanceClock) {
  sim::SimContext ctx(sim::rvv_gem5());
  VectorEngine eng(ctx);
  const auto c0 = ctx.cycles();
  eng.scalar_ops(1000);
  EXPECT_GE(ctx.cycles(), c0 + 1000);
}

TEST(EngineSim, PrefetchNoopStillDecodes) {
  sim::SimContext ctx(sim::sve_gem5());  // prefetch ignored on gem5 SVE
  VectorEngine eng(ctx);
  auto buf = random_vec(64, 7);
  const auto c0 = ctx.cycles();
  eng.prefetch(buf.data(), 256, 1);
  EXPECT_GT(ctx.cycles(), c0);  // decode slot charged
  // But the data is NOT resident afterwards.
  eng.setvl(16);
  eng.vload(0, buf.data());
  EXPECT_GT(ctx.memory().l1_stats().misses, 0u);
}

}  // namespace
}  // namespace vlacnn::vla

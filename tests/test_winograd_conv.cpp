// Full Winograd convolution vs the direct reference: stride 1 and 2, edge
// tiles, channel remainders, and every vector length the paper studies on
// ARM-SVE — plus the inter-tile grouping behaviour itself.

#include <gtest/gtest.h>

#include <vector>

#include "test_util.hpp"
#include "winograd/winograd_conv.hpp"

namespace vlacnn::winograd {
namespace {

using test::allclose;
using test::conv_direct_ref;
using test::random_vec;

struct Case {
  int in_c, hw, out_c, stride;
};

class WinogradConvTest
    : public ::testing::TestWithParam<std::tuple<unsigned, Case>> {};

TEST_P(WinogradConvTest, MatchesDirectConvolution) {
  const auto [vlen, c] = GetParam();
  dnn::ConvDesc d;
  d.in_c = c.in_c;
  d.in_h = d.in_w = c.hw;
  d.out_c = c.out_c;
  d.ksize = 3;
  d.stride = c.stride;
  d.pad = 1;
  d.validate();

  auto input = random_vec(static_cast<std::size_t>(d.in_c) * d.in_h * d.in_w, 1);
  auto weights = random_vec(static_cast<std::size_t>(d.weight_count()), 2,
                            -0.5f, 0.5f);
  std::vector<float> ref(static_cast<std::size_t>(d.out_c) * d.out_h() *
                         d.out_w());
  std::vector<float> got(ref.size(), -1e30f);
  conv_direct_ref(d, input.data(), weights.data(), ref.data());

  vla::VectorEngine eng(vlen);
  WinogradConv wino;
  ASSERT_TRUE(WinogradConv::supports(d));
  wino.run(eng, d, input.data(), weights.data(), got.data());

  EXPECT_TRUE(allclose(ref.data(), got.data(), ref.size(), 2e-3f, 2e-3f))
      << "vlen=" << vlen << " c=" << c.in_c << " hw=" << c.hw
      << " oc=" << c.out_c << " stride=" << c.stride;
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndVectorLengths, WinogradConvTest,
    ::testing::Combine(
        ::testing::Values(512u, 1024u, 2048u),
        ::testing::Values(
            Case{1, 12, 1, 1},    // single channel, interior+edge tiles
            Case{4, 12, 4, 1},    // exactly one 512-bit group
            Case{3, 18, 5, 1},    // channel remainder below group size
            Case{16, 12, 8, 1},   // multiple groups
            Case{5, 9, 2, 1},     // output not divisible by 6 (edge clip)
            Case{2, 6, 3, 1},     // minimal: single tile column
            Case{4, 12, 4, 2},    // stride-2 via dense + subsample
            Case{3, 14, 6, 2})),  // stride-2 with odd edges
    [](const auto& info) {
      const unsigned vlen = std::get<0>(info.param);
      const Case c = std::get<1>(info.param);
      return "vl" + std::to_string(vlen) + "_c" + std::to_string(c.in_c) +
             "_hw" + std::to_string(c.hw) + "_oc" + std::to_string(c.out_c) +
             "_s" + std::to_string(c.stride);
    });

TEST(WinogradSupports, ShapeGate) {
  dnn::ConvDesc d;
  d.in_c = 4;
  d.in_h = d.in_w = 16;
  d.out_c = 4;
  d.ksize = 3;
  d.stride = 1;
  d.pad = 1;
  EXPECT_TRUE(WinogradConv::supports(d));
  d.ksize = 1;
  d.pad = 0;
  EXPECT_FALSE(WinogradConv::supports(d));
  d.ksize = 5;
  d.pad = 2;
  EXPECT_FALSE(WinogradConv::supports(d));
  d.ksize = 3;
  d.pad = 1;
  d.stride = 2;
  EXPECT_TRUE(WinogradConv::supports(d));
  d.stride = 3;
  EXPECT_FALSE(WinogradConv::supports(d));
}

TEST(WinogradWeights, CacheInvalidation) {
  dnn::ConvDesc d;
  d.in_c = 2;
  d.in_h = d.in_w = 12;
  d.out_c = 2;
  d.ksize = 3;
  d.stride = 1;
  d.pad = 1;
  auto input = random_vec(static_cast<std::size_t>(d.in_c) * d.in_h * d.in_w, 3);
  auto weights = random_vec(static_cast<std::size_t>(d.weight_count()), 4);
  std::vector<float> out1(static_cast<std::size_t>(d.out_c) * d.out_h() *
                          d.out_w());
  std::vector<float> out2(out1.size());

  vla::VectorEngine eng(512);
  WinogradConv wino;
  wino.run(eng, d, input.data(), weights.data(), out1.data());

  // Mutate weights in place: without invalidation the stale transformed
  // weights must be reused (cache keyed by pointer)...
  for (auto& w : weights) w *= 2.0f;
  wino.run(eng, d, input.data(), weights.data(), out2.data());
  EXPECT_TRUE(allclose(out1.data(), out2.data(), out1.size(), 1e-6f, 1e-6f));

  // ...and with invalidation the new weights must take effect (outputs
  // scale by exactly 2).
  wino.invalidate_weight_cache();
  wino.run(eng, d, input.data(), weights.data(), out2.data());
  std::vector<float> doubled(out1.size());
  for (std::size_t i = 0; i < out1.size(); ++i) doubled[i] = 2.0f * out1[i];
  EXPECT_TRUE(allclose(doubled.data(), out2.data(), out1.size(), 2e-3f, 2e-3f));
}

TEST(WinogradDeterminism, RepeatedRunsBitIdentical) {
  dnn::ConvDesc d;
  d.in_c = 4;
  d.in_h = d.in_w = 18;
  d.out_c = 4;
  d.ksize = 3;
  d.stride = 1;
  d.pad = 1;
  auto input = random_vec(static_cast<std::size_t>(d.in_c) * d.in_h * d.in_w, 5);
  auto weights = random_vec(static_cast<std::size_t>(d.weight_count()), 6);
  std::vector<float> out1(static_cast<std::size_t>(d.out_c) * d.out_h() *
                          d.out_w());
  std::vector<float> out2(out1.size());

  vla::VectorEngine eng(1024);
  WinogradConv wino;
  wino.run(eng, d, input.data(), weights.data(), out1.data());
  wino.run(eng, d, input.data(), weights.data(), out2.data());
  EXPECT_EQ(0, std::memcmp(out1.data(), out2.data(),
                           out1.size() * sizeof(float)));
}

TEST(WinogradLongVector, RvvLengthsAlsoCorrect) {
  // The paper only evaluates Winograd on SVE, but the implementation is
  // VLA: very long RVV-style registers must still be numerically correct
  // (group capped at 16 channels).
  dnn::ConvDesc d;
  d.in_c = 24;
  d.in_h = d.in_w = 12;
  d.out_c = 6;
  d.ksize = 3;
  d.stride = 1;
  d.pad = 1;
  auto input = random_vec(static_cast<std::size_t>(d.in_c) * d.in_h * d.in_w, 7);
  auto weights = random_vec(static_cast<std::size_t>(d.weight_count()), 8,
                            -0.3f, 0.3f);
  std::vector<float> ref(static_cast<std::size_t>(d.out_c) * d.out_h() *
                         d.out_w());
  std::vector<float> got(ref.size());
  conv_direct_ref(d, input.data(), weights.data(), ref.data());

  for (unsigned vlen : {4096u, 16384u}) {
    vla::VectorEngine eng(vlen);
    WinogradConv wino;
    wino.run(eng, d, input.data(), weights.data(), got.data());
    EXPECT_TRUE(allclose(ref.data(), got.data(), ref.size(), 2e-3f, 2e-3f))
        << vlen;
  }
}

}  // namespace
}  // namespace vlacnn::winograd

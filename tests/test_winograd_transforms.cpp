// Winograd F(6x6,3x3) transform correctness: the scalar reference
// transforms must compute an exact 3x3 stride-1 convolution on a single
// tile, which validates the Bᵀ/G/Aᵀ matrices themselves.

#include <gtest/gtest.h>

#include <vector>

#include "test_util.hpp"
#include "winograd/f6x3.hpp"

namespace vlacnn::winograd {
namespace {

using test::allclose;
using test::random_vec;

/// Direct 6x6 output of a 3x3 valid convolution on an 8x8 patch.
void direct_tile_conv(const float d[64], const float g[9], float out[36]) {
  for (int y = 0; y < 6; ++y) {
    for (int x = 0; x < 6; ++x) {
      double acc = 0.0;
      for (int ky = 0; ky < 3; ++ky)
        for (int kx = 0; kx < 3; ++kx)
          acc += static_cast<double>(g[ky * 3 + kx]) * d[(y + ky) * 8 + x + kx];
      out[y * 6 + x] = static_cast<float>(acc);
    }
  }
}

TEST(WinogradMatrices, SingleTileConvolutionExact) {
  auto d = random_vec(64, 1);
  auto g = random_vec(9, 2);
  float v[64], u[64], m[64], y[36], y_ref[36];

  input_transform_ref(d.data(), v);
  weight_transform_ref(g.data(), u);
  for (int i = 0; i < 64; ++i) m[i] = u[i] * v[i];
  output_transform_ref(m, y);
  direct_tile_conv(d.data(), g.data(), y_ref);
  EXPECT_TRUE(allclose(y_ref, y, 36, 1e-3f, 1e-3f));
}

TEST(WinogradMatrices, LinearityOfInputTransform) {
  auto d1 = random_vec(64, 3), d2 = random_vec(64, 4);
  float v1[64], v2[64], vsum[64];
  std::vector<float> dsum(64);
  for (int i = 0; i < 64; ++i) dsum[static_cast<std::size_t>(i)] = d1[static_cast<std::size_t>(i)] + d2[static_cast<std::size_t>(i)];
  input_transform_ref(d1.data(), v1);
  input_transform_ref(d2.data(), v2);
  input_transform_ref(dsum.data(), vsum);
  for (int i = 0; i < 64; ++i)
    EXPECT_NEAR(vsum[i], v1[i] + v2[i], 1e-3f) << i;
}

TEST(WinogradMatrices, ZeroInputsTransformToZero) {
  std::vector<float> zero(64, 0.0f);
  float v[64];
  input_transform_ref(zero.data(), v);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(v[i], 0.0f);

  std::vector<float> zg(9, 0.0f);
  float u[64];
  weight_transform_ref(zg.data(), u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(u[i], 0.0f);
}

TEST(WinogradMatrices, IdentityKernelPassesThrough) {
  // A 3x3 kernel with only the center tap = 1 shifts the patch by (1,1).
  float g[9] = {0, 0, 0, 0, 1, 0, 0, 0, 0};
  auto d = random_vec(64, 5);
  float v[64], u[64], m[64], y[36];
  input_transform_ref(d.data(), v);
  weight_transform_ref(g, u);
  for (int i = 0; i < 64; ++i) m[i] = u[i] * v[i];
  output_transform_ref(m, y);
  for (int r = 0; r < 6; ++r)
    for (int c = 0; c < 6; ++c)
      EXPECT_NEAR(y[r * 6 + c], d[static_cast<std::size_t>((r + 1) * 8 + c + 1)], 2e-3f);
}

TEST(WinogradMatrices, ConstantKernelSumsWindows) {
  float g[9];
  for (auto& x : g) x = 1.0f;
  auto d = random_vec(64, 6);
  float v[64], u[64], m[64], y[36];
  input_transform_ref(d.data(), v);
  weight_transform_ref(g, u);
  for (int i = 0; i < 64; ++i) m[i] = u[i] * v[i];
  output_transform_ref(m, y);
  for (int r = 0; r < 6; ++r) {
    for (int c = 0; c < 6; ++c) {
      double sum = 0.0;
      for (int ky = 0; ky < 3; ++ky)
        for (int kx = 0; kx < 3; ++kx)
          sum += d[static_cast<std::size_t>((r + ky) * 8 + c + kx)];
      EXPECT_NEAR(y[r * 6 + c], sum, 5e-3);
    }
  }
}

TEST(WinogradMatrices, ArithmeticReductionIsRealized) {
  // F(6x6,3x3): 64 tuple multiplies replace 36*9 = 324 direct multiplies.
  EXPECT_EQ(kTileElems, 64);
  EXPECT_EQ(kOutTile * kOutTile * 9, 324);
  EXPECT_LT(kTileElems * 5, kOutTile * kOutTile * 9);
}

}  // namespace
}  // namespace vlacnn::winograd

// Winograd tile-size variants F(2x2,3x3) / F(4x4,3x3) / F(6x6,3x3):
// correctness of each transform set and the paper's accuracy claim — error
// grows with tile size (§IV-B's justification for stopping at 8x8 tiles).

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "winograd/variants.hpp"

namespace vlacnn::winograd {
namespace {

class VariantTest : public ::testing::TestWithParam<const WinogradVariant*> {};

TEST_P(VariantTest, GeometryConsistent) {
  const WinogradVariant& v = *GetParam();
  EXPECT_EQ(v.in_tile, v.out_tile + 2);  // r = 3
  EXPECT_EQ(v.bt.size(), static_cast<std::size_t>(v.in_tile) * v.in_tile);
  EXPECT_EQ(v.g.size(), static_cast<std::size_t>(v.in_tile) * 3);
  EXPECT_EQ(v.at.size(), static_cast<std::size_t>(v.out_tile) * v.in_tile);
}

TEST_P(VariantTest, SingleTileMatchesDirect) {
  const WinogradVariant& v = *GetParam();
  Rng rng(11);
  const int t = v.in_tile, m = v.out_tile;
  std::vector<float> d(static_cast<std::size_t>(t) * t);
  float g[9];
  for (auto& x : d) x = rng.uniform(-1.0f, 1.0f);
  for (auto& x : g) x = rng.uniform(-1.0f, 1.0f);

  std::vector<float> got(static_cast<std::size_t>(m) * m);
  variant_tile_conv(v, d.data(), g, got.data());

  for (int y = 0; y < m; ++y) {
    for (int x = 0; x < m; ++x) {
      double acc = 0.0;
      for (int ky = 0; ky < 3; ++ky)
        for (int kx = 0; kx < 3; ++kx)
          acc += static_cast<double>(g[ky * 3 + kx]) *
                 d[static_cast<std::size_t>(y + ky) * t + x + kx];
      EXPECT_NEAR(got[static_cast<std::size_t>(y) * m + x], acc, 5e-3)
          << v.name << " (" << y << "," << x << ")";
    }
  }
}

TEST_P(VariantTest, FullImageMatchesDirect) {
  const WinogradVariant& v = *GetParam();
  const double err = variant_max_error(v, 20, 23, 3);
  EXPECT_LT(err, 1e-2) << v.name;
}

TEST_P(VariantTest, ArithmeticReductionOrdering) {
  const WinogradVariant& v = *GetParam();
  EXPECT_GT(v.arithmetic_reduction(), 2.0);
  EXPECT_LT(v.arithmetic_reduction(), 6.0);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantTest,
                         ::testing::Values(&f2x3(), &f4x3(), &f6x3_variant()),
                         [](const auto& info) {
                           std::string n = info.param->name;
                           std::string out;
                           for (char c : n)
                             if (std::isalnum(static_cast<unsigned char>(c)))
                               out += c;
                           return out;
                         });

TEST(VariantAccuracy, ErrorGrowsWithTileSize) {
  // The paper's stated reason for not exceeding 8x8 tiles: accuracy drops
  // as the interpolation points spread. Average over several seeds.
  double e2 = 0, e4 = 0, e6 = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    e2 += variant_max_error(f2x3(), 36, 36, seed);
    e4 += variant_max_error(f4x3(), 36, 36, seed);
    e6 += variant_max_error(f6x3_variant(), 36, 36, seed);
  }
  EXPECT_LT(e2, e4);
  EXPECT_LT(e4, e6);
}

TEST(VariantAccuracy, ReductionGrowsWithTileSize) {
  EXPECT_LT(f2x3().arithmetic_reduction(), f4x3().arithmetic_reduction());
  EXPECT_LT(f4x3().arithmetic_reduction(),
            f6x3_variant().arithmetic_reduction());
  EXPECT_NEAR(f6x3_variant().arithmetic_reduction(), 5.06, 0.01);
}

}  // namespace
}  // namespace vlacnn::winograd

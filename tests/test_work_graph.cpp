// Work-graph executor: bitwise equivalence with the serialized executor
// across models / batch sizes / worker counts / backend plans, proof that
// batches overlap in the graph, and a sleep-injection stress test gating
// that interleaving never changes outputs or merged LayerRecord order.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/conv_engine.hpp"
#include "dnn/models.hpp"
#include "runtime/batch_scheduler.hpp"
#include "test_util.hpp"

namespace vlacnn::runtime {
namespace {

struct SchedRun {
  std::vector<float> output;
  std::vector<dnn::LayerRecord> records;
  ExecStats exec;
};

SchedRun run_sched(dnn::Network& net, const core::EnginePolicy& policy,
                   int batch, int threads, ExecutorKind kind,
                   std::function<void(int, int)> hook = nullptr) {
  core::ConvolutionEngine engine(policy);
  SchedulerConfig cfg;
  cfg.threads = threads;
  cfg.executor = kind;
  BatchScheduler sched(engine, cfg);
  sched.test_item_hook = std::move(hook);
  dnn::Tensor in(batch, net.in_c(), net.in_h(), net.in_w());
  in.randomize_batch(4321, 0.0f, 1.0f);
  BatchResult r = sched.wait(sched.submit(net, std::move(in)));
  SchedRun out;
  out.output.assign(r.output.data(), r.output.data() + r.output.size());
  out.records = std::move(r.records);
  out.exec = r.exec;
  return out;
}

// Accounting identity between executors: same layer order, same backend
// labels, same item/flop totals. Wall times naturally differ.
void expect_same_records(const std::vector<dnn::LayerRecord>& a,
                         const std::vector<dnn::LayerRecord>& b,
                         const std::string& tag) {
  ASSERT_EQ(a.size(), b.size()) << tag;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name) << tag << " layer " << i;
    EXPECT_EQ(a[i].algo, b[i].algo) << tag << " layer " << i;
    EXPECT_EQ(a[i].items, b[i].items) << tag << " layer " << i;
    EXPECT_DOUBLE_EQ(a[i].flops, b[i].flops) << tag << " layer " << i;
  }
}

struct ModelCase {
  const char* tag;
  std::unique_ptr<dnn::Network> (*build)();
};

const ModelCase kModels[] = {
    {"vgg", [] { return dnn::build_vgg16(32, 4); }},
    // Residual-fused yolo: the fused shortcut pins a barrier layer whose
    // output tensor aliases its producer's — the aliasing-hazard case.
    {"yolo-res",
     [] {
       auto net = dnn::build_yolov3(32, 8);
       net->fuse_residuals();
       return net;
     }},
};

TEST(WorkGraph, BitIdenticalToSerialAcrossModelsBatchesWorkersPlans) {
  struct PolicyCase {
    const char* tag;
    core::EnginePolicy policy;
  };
  core::EnginePolicy resident = core::EnginePolicy::fused();
  resident.weight_resident = true;
  const PolicyCase policies[] = {
      {"opt6loop", core::EnginePolicy::opt6loop()},
      {"fused", core::EnginePolicy::fused()},
      {"fused+resident", resident},
  };
  for (const auto& m : kModels) {
    auto net = m.build();
    for (const auto& p : policies) {
      for (int batch : {1, 2, 4, 8}) {
        // The serial executor is the reference; it is already known to be
        // thread-count-invariant, so one reference per (model, plan, batch)
        // suffices.
        const SchedRun ref =
            run_sched(*net, p.policy, batch, 1, ExecutorKind::Serial);
        for (int threads : {1, 2, 4}) {
          const std::string tag = std::string(m.tag) + "/" + p.tag +
                                  " batch=" + std::to_string(batch) +
                                  " threads=" + std::to_string(threads);
          const SchedRun graph =
              run_sched(*net, p.policy, batch, threads, ExecutorKind::Graph);
          ASSERT_EQ(graph.output.size(), ref.output.size()) << tag;
          EXPECT_EQ(std::memcmp(graph.output.data(), ref.output.data(),
                                ref.output.size() * sizeof(float)),
                    0)
              << tag;
          expect_same_records(graph.records, ref.records, tag);
        }
      }
    }
  }
}

TEST(WorkGraph, OverlapStartsBeforePreviousBatchCompletes) {
  auto net = dnn::build_vgg16(32, 4);
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  SchedulerConfig cfg;
  cfg.threads = 2;
  cfg.executor = ExecutorKind::Graph;
  BatchScheduler sched(engine, cfg);

  // Slow down the first chunk of the LATE layers only: one worker crawls
  // through batch 1's tail while the other drains its own chunks fast and
  // has nothing left of batch 1 to steal — the only work available is
  // batch 2's early layers, which the graph must hand it.
  const int late = static_cast<int>(net->num_layers()) / 2;
  sched.test_item_hook = [late](int layer, int item) {
    if (layer >= late && item >= 0 && item < 2)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };

  dnn::Tensor in1(4, net->in_c(), net->in_h(), net->in_w());
  dnn::Tensor in2(4, net->in_c(), net->in_h(), net->in_w());
  in1.randomize_batch(1);
  in2.randomize_batch(2);
  const BatchTicket t1 = sched.submit(*net, std::move(in1));
  const BatchTicket t2 = sched.submit(*net, std::move(in2));
  const BatchResult r1 = sched.wait(t1);
  const BatchResult r2 = sched.wait(t2);

  // Batch 2 must have entered the network before batch 1 left it.
  EXPECT_GT(r2.exec.overlap_task_starts, 0u);
  EXPECT_GT(r2.exec.overlap_first_layer_starts, 0u);
  EXPECT_EQ(r1.exec.overlap_task_starts, 0u);  // nothing older than batch 1
  EXPECT_GT(r1.exec.workers, 1);
  EXPECT_GT(r1.exec.occupancy(), 0.0);
  EXPECT_LE(r1.exec.occupancy(), 1.0);

  // Overlap must not have corrupted either batch.
  sched.test_item_hook = nullptr;
  for (int k = 0; k < 2; ++k) {
    dnn::Tensor in(4, net->in_c(), net->in_h(), net->in_w());
    in.randomize_batch(static_cast<std::uint64_t>(1 + k));
    const BatchResult ref = sched.wait(sched.submit(*net, std::move(in)));
    const BatchResult& got = k == 0 ? r1 : r2;
    ASSERT_EQ(got.output.size(), ref.output.size());
    EXPECT_EQ(std::memcmp(got.output.data(), ref.output.data(),
                          ref.output.size() * sizeof(float)),
              0)
        << "batch " << k;
  }
}

// Random per-chunk delays shake the interleaving; outputs and merged record
// order must not move. Runs under TSan in CI (job regex includes WorkGraph).
TEST(WorkGraphStress, RandomSleepsNeverChangeOutputsOrRecordOrder) {
  core::EnginePolicy resident = core::EnginePolicy::fused();
  resident.weight_resident = true;
  for (const auto& m : kModels) {
    auto net = m.build();
    const SchedRun ref = run_sched(*net, resident, 6, 1, ExecutorKind::Serial);
    std::atomic<std::uint32_t> salt{0};
    const auto jitter = [&salt](int layer, int item) {
      // Cheap per-call pseudo-random delay, deliberately unsynchronized
      // with the schedule (0-200us).
      std::uint32_t x =
          salt.fetch_add(1, std::memory_order_relaxed) * 2654435761u +
          static_cast<std::uint32_t>(layer * 131 + item * 31);
      x ^= x >> 13;
      std::this_thread::sleep_for(std::chrono::microseconds(x % 200));
    };
    for (int threads : {1, 2, 4, 8}) {
      for (int round = 0; round < 2; ++round) {
        const std::string tag = std::string(m.tag) +
                                " threads=" + std::to_string(threads) +
                                " round=" + std::to_string(round);
        const SchedRun got =
            run_sched(*net, resident, 6, threads, ExecutorKind::Graph, jitter);
        ASSERT_EQ(got.output.size(), ref.output.size()) << tag;
        EXPECT_EQ(std::memcmp(got.output.data(), ref.output.data(),
                              ref.output.size() * sizeof(float)),
                  0)
            << tag;
        expect_same_records(got.records, ref.records, tag);
      }
    }
  }
}

}  // namespace
}  // namespace vlacnn::runtime

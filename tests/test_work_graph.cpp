// Work-graph executor: bitwise equivalence with the serialized executor
// across models / batch sizes / worker counts / backend plans, proof that
// batches overlap in the graph, and a sleep-injection stress test gating
// that interleaving never changes outputs or merged LayerRecord order.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/conv_engine.hpp"
#include "dnn/models.hpp"
#include "runtime/batch_scheduler.hpp"
#include "runtime/work_graph.hpp"
#include "test_util.hpp"

namespace vlacnn::runtime {
namespace {

struct SchedRun {
  std::vector<float> output;
  std::vector<dnn::LayerRecord> records;
  ExecStats exec;
};

SchedRun run_sched(dnn::Network& net, const core::EnginePolicy& policy,
                   int batch, int threads, ExecutorKind kind,
                   std::function<void(int, int)> hook = nullptr) {
  core::ConvolutionEngine engine(policy);
  SchedulerConfig cfg;
  cfg.threads = threads;
  cfg.executor = kind;
  BatchScheduler sched(engine, cfg);
  sched.test_item_hook = std::move(hook);
  dnn::Tensor in(batch, net.in_c(), net.in_h(), net.in_w());
  in.randomize_batch(4321, 0.0f, 1.0f);
  BatchResult r = sched.wait(sched.submit(net, std::move(in)));
  SchedRun out;
  out.output.assign(r.output.data(), r.output.data() + r.output.size());
  out.records = std::move(r.records);
  out.exec = r.exec;
  return out;
}

// Accounting identity between executors: same layer order, same backend
// labels, same item/flop totals. Wall times naturally differ.
void expect_same_records(const std::vector<dnn::LayerRecord>& a,
                         const std::vector<dnn::LayerRecord>& b,
                         const std::string& tag) {
  ASSERT_EQ(a.size(), b.size()) << tag;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name) << tag << " layer " << i;
    EXPECT_EQ(a[i].algo, b[i].algo) << tag << " layer " << i;
    EXPECT_EQ(a[i].items, b[i].items) << tag << " layer " << i;
    EXPECT_DOUBLE_EQ(a[i].flops, b[i].flops) << tag << " layer " << i;
  }
}

struct ModelCase {
  const char* tag;
  std::unique_ptr<dnn::Network> (*build)();
};

const ModelCase kModels[] = {
    {"vgg", [] { return dnn::build_vgg16(32, 4); }},
    // Residual-fused yolo: the fused shortcut pins a barrier layer whose
    // output tensor aliases its producer's — the aliasing-hazard case.
    {"yolo-res",
     [] {
       auto net = dnn::build_yolov3(32, 8);
       net->fuse_residuals();
       return net;
     }},
};

TEST(WorkGraph, BitIdenticalToSerialAcrossModelsBatchesWorkersPlans) {
  struct PolicyCase {
    const char* tag;
    core::EnginePolicy policy;
  };
  core::EnginePolicy resident = core::EnginePolicy::fused();
  resident.weight_resident = true;
  const PolicyCase policies[] = {
      {"opt6loop", core::EnginePolicy::opt6loop()},
      {"fused", core::EnginePolicy::fused()},
      {"fused+resident", resident},
  };
  for (const auto& m : kModels) {
    auto net = m.build();
    for (const auto& p : policies) {
      for (int batch : {1, 2, 4, 8}) {
        // The serial executor is the reference; it is already known to be
        // thread-count-invariant, so one reference per (model, plan, batch)
        // suffices.
        const SchedRun ref =
            run_sched(*net, p.policy, batch, 1, ExecutorKind::Serial);
        for (int threads : {1, 2, 4}) {
          const std::string tag = std::string(m.tag) + "/" + p.tag +
                                  " batch=" + std::to_string(batch) +
                                  " threads=" + std::to_string(threads);
          const SchedRun graph =
              run_sched(*net, p.policy, batch, threads, ExecutorKind::Graph);
          ASSERT_EQ(graph.output.size(), ref.output.size()) << tag;
          EXPECT_EQ(std::memcmp(graph.output.data(), ref.output.data(),
                                ref.output.size() * sizeof(float)),
                    0)
              << tag;
          expect_same_records(graph.records, ref.records, tag);
        }
      }
    }
  }
}

TEST(WorkGraph, OverlapStartsBeforePreviousBatchCompletes) {
  auto net = dnn::build_vgg16(32, 4);
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  SchedulerConfig cfg;
  cfg.threads = 2;
  cfg.executor = ExecutorKind::Graph;
  BatchScheduler sched(engine, cfg);

  // Slow down the first chunk of the LATE layers only: one worker crawls
  // through batch 1's tail while the other drains its own chunks fast and
  // has nothing left of batch 1 to steal — the only work available is
  // batch 2's early layers, which the graph must hand it.
  const int late = static_cast<int>(net->num_layers()) / 2;
  sched.test_item_hook = [late](int layer, int item) {
    if (layer >= late && item >= 0 && item < 2)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };

  dnn::Tensor in1(4, net->in_c(), net->in_h(), net->in_w());
  dnn::Tensor in2(4, net->in_c(), net->in_h(), net->in_w());
  in1.randomize_batch(1);
  in2.randomize_batch(2);
  const BatchTicket t1 = sched.submit(*net, std::move(in1));
  const BatchTicket t2 = sched.submit(*net, std::move(in2));
  const BatchResult r1 = sched.wait(t1);
  const BatchResult r2 = sched.wait(t2);

  // Batch 2 must have entered the network before batch 1 left it.
  EXPECT_GT(r2.exec.overlap_task_starts, 0u);
  EXPECT_GT(r2.exec.overlap_first_layer_starts, 0u);
  EXPECT_EQ(r1.exec.overlap_task_starts, 0u);  // nothing older than batch 1
  EXPECT_GT(r1.exec.workers, 1);
  EXPECT_GT(r1.exec.occupancy(), 0.0);
  EXPECT_LE(r1.exec.occupancy(), 1.0);

  // Overlap must not have corrupted either batch.
  sched.test_item_hook = nullptr;
  for (int k = 0; k < 2; ++k) {
    dnn::Tensor in(4, net->in_c(), net->in_h(), net->in_w());
    in.randomize_batch(static_cast<std::uint64_t>(1 + k));
    const BatchResult ref = sched.wait(sched.submit(*net, std::move(in)));
    const BatchResult& got = k == 0 ? r1 : r2;
    ASSERT_EQ(got.output.size(), ref.output.size());
    EXPECT_EQ(std::memcmp(got.output.data(), ref.output.data(),
                          ref.output.size() * sizeof(float)),
              0)
        << "batch " << k;
  }
}

// Batches that share NO tensors build no hazard edges against each other;
// only the launch-time sink-to-sink chain keeps completion FIFO. The fast
// batch here would finish first without it, and retire() would pop (and
// destroy) the wrong, still-executing batch.
TEST(WorkGraph, DisjointKeyBatchesCompleteFifo) {
  ThreadPool pool(4);
  WorkGraph graph(pool);
  std::mutex mu;
  std::vector<int> order;
  int key_a = 0, key_b = 0;

  GraphBatchSpec slow;
  slow.items = 4;
  slow.chunks = 4;
  GraphLayerSpec la;
  la.inputs = {-1};
  la.out_key = &key_a;
  la.run = [](int, int, int, dnn::LayerRecord&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };
  slow.layers.push_back(la);
  slow.final_read_keys = {&key_a};
  slow.on_done = [&](GraphBatchResult&&) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(1);
  };

  GraphBatchSpec fast;
  fast.items = 1;
  fast.chunks = 1;
  GraphLayerSpec lb;
  lb.inputs = {-1};
  lb.out_key = &key_b;  // disjoint from key_a: no WAR/WAW edge possible
  lb.run = [](int, int, int, dnn::LayerRecord&) {};
  fast.layers.push_back(lb);
  fast.on_done = [&](GraphBatchResult&&) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(2);
  };

  graph.launch(std::move(slow));
  graph.launch(std::move(fast));
  graph.drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(graph.live_batches(), 0);
}

// launch() must validate the whole spec before registering anything: a
// malformed LATER layer may not leave edges from a live batch's nodes into
// the rejected (destroyed) batch, nor stale live_touch_ entries.
TEST(WorkGraph, RejectsMalformedSpecWithoutTouchingLiveBatches) {
  ThreadPool pool(2);
  WorkGraph graph(pool);
  int key0 = 0, key1 = 0;
  std::atomic<int> completed{0};

  const auto make_valid = [&](int sleep_ms) {
    GraphBatchSpec s;
    s.items = 2;
    s.chunks = 2;
    GraphLayerSpec l0;
    l0.inputs = {-1};
    l0.out_key = &key0;
    l0.run = [sleep_ms](int, int, int, dnn::LayerRecord&) {
      if (sleep_ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    };
    GraphLayerSpec l1;
    l1.inputs = {0};
    l1.out_key = &key1;
    l1.run = [](int, int, int, dnn::LayerRecord&) {};
    s.layers = {l0, l1};
    s.final_read_keys = {&key1};
    s.on_done = [&](GraphBatchResult&& res) {
      if (!res.error) completed.fetch_add(1);
    };
    return s;
  };

  graph.launch(make_valid(3));

  // Layer 0 shares key0 with the live batch (would register cross-batch
  // edges); layer 1 is malformed — the whole spec must be rejected first.
  GraphBatchSpec bad = make_valid(0);
  bad.layers[1].out_key = nullptr;
  EXPECT_THROW(graph.launch(std::move(bad)), InvalidArgument);

  GraphBatchSpec self_input = make_valid(0);
  self_input.layers[1].inputs = {1};  // inputs must precede the layer
  EXPECT_THROW(graph.launch(std::move(self_input)), InvalidArgument);

  // The live batch and a subsequent one on the same keys still run clean.
  graph.launch(make_valid(0));
  graph.drain();
  EXPECT_EQ(completed.load(), 2);
  EXPECT_EQ(graph.live_batches(), 0);
}

// The reviewer scenario end-to-end: BatchScheduler::submit accepts a
// different Network per call, so two in-flight batches may share no tensor
// keys at all. The hook slows only the older batch (items >= 4 exist only
// there), so absent the FIFO sink chain the younger batch would complete
// first. Runs under TSan in CI (job regex includes WorkGraph).
TEST(WorkGraph, DistinctNetworksInFlightRetireFifo) {
  auto net_a = dnn::build_vgg16(32, 4);
  auto net_b = dnn::build_vgg16(32, 4);
  core::ConvolutionEngine engine(core::EnginePolicy::opt6loop());
  SchedulerConfig cfg;
  cfg.threads = 2;
  cfg.executor = ExecutorKind::Graph;
  BatchScheduler sched(engine, cfg);
  sched.test_item_hook = [](int, int item) {
    if (item >= 4) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };

  dnn::Tensor in_a(8, net_a->in_c(), net_a->in_h(), net_a->in_w());
  dnn::Tensor in_b(2, net_b->in_c(), net_b->in_h(), net_b->in_w());
  in_a.randomize_batch(7);
  in_b.randomize_batch(8);
  const BatchTicket ta = sched.submit(*net_a, std::move(in_a));
  const BatchTicket tb = sched.submit(*net_b, std::move(in_b));
  const BatchResult ra = sched.wait(ta);
  const BatchResult rb = sched.wait(tb);

  // Neither batch may be corrupted by the overlap: both must match a fresh
  // un-overlapped run of the same (network, input).
  sched.test_item_hook = nullptr;
  for (int k = 0; k < 2; ++k) {
    dnn::Network& net = k == 0 ? *net_a : *net_b;
    dnn::Tensor in(k == 0 ? 8 : 2, net.in_c(), net.in_h(), net.in_w());
    in.randomize_batch(static_cast<std::uint64_t>(7 + k));
    const BatchResult ref = sched.wait(sched.submit(net, std::move(in)));
    const BatchResult& got = k == 0 ? ra : rb;
    ASSERT_EQ(got.output.size(), ref.output.size()) << "net " << k;
    EXPECT_EQ(std::memcmp(got.output.data(), ref.output.data(),
                          ref.output.size() * sizeof(float)),
              0)
        << "net " << k;
  }
}

// Random per-chunk delays shake the interleaving; outputs and merged record
// order must not move. Runs under TSan in CI (job regex includes WorkGraph).
TEST(WorkGraphStress, RandomSleepsNeverChangeOutputsOrRecordOrder) {
  core::EnginePolicy resident = core::EnginePolicy::fused();
  resident.weight_resident = true;
  for (const auto& m : kModels) {
    auto net = m.build();
    const SchedRun ref = run_sched(*net, resident, 6, 1, ExecutorKind::Serial);
    std::atomic<std::uint32_t> salt{0};
    const auto jitter = [&salt](int layer, int item) {
      // Cheap per-call pseudo-random delay, deliberately unsynchronized
      // with the schedule (0-200us).
      std::uint32_t x =
          salt.fetch_add(1, std::memory_order_relaxed) * 2654435761u +
          static_cast<std::uint32_t>(layer * 131 + item * 31);
      x ^= x >> 13;
      std::this_thread::sleep_for(std::chrono::microseconds(x % 200));
    };
    for (int threads : {1, 2, 4, 8}) {
      for (int round = 0; round < 2; ++round) {
        const std::string tag = std::string(m.tag) +
                                " threads=" + std::to_string(threads) +
                                " round=" + std::to_string(round);
        const SchedRun got =
            run_sched(*net, resident, 6, threads, ExecutorKind::Graph, jitter);
        ASSERT_EQ(got.output.size(), ref.output.size()) << tag;
        EXPECT_EQ(std::memcmp(got.output.data(), ref.output.data(),
                              ref.output.size() * sizeof(float)),
                  0)
            << tag;
        expect_same_records(got.records, ref.records, tag);
      }
    }
  }
}

}  // namespace
}  // namespace vlacnn::runtime
